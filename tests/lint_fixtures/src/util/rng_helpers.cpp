// Lives under the util/rng allowlist prefix, so the entropy source below is
// NOT a finding — this is the one place allowed to touch hardware entropy.
#include <random>

namespace fixture {

unsigned hardware_entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
