// layer_a's declared deps are {util} only, so this include is one layer
// finding.
#pragma once

#include "layer_b/b.hpp"

namespace fixture {

inline int depth() { return fixture_b_value() + 1; }

}  // namespace fixture
