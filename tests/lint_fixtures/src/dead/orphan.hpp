// No file includes this header: one dead-header finding.
#pragma once

namespace fixture {

constexpr int kOrphan = 3;

}  // namespace fixture
