// Golden-trace pinning of the observability layer.
//
// Two checked-in canonical-JSON traces lock the protocol's observable story
// down to the byte: a hand-built 4-node single-NIC-failure scenario (every
// event kind except the ping_sent flood) and campaign 0 of the default
// scripted chaos schedule (control-plane events only). A third test proves
// the property the canonical exporter exists for: traces captured through
// the sharded chaos runner are byte-identical at --threads 1 and 8 and
// across reruns.
//
// To regenerate after an intentional protocol/trace change:
//   DRS_UPDATE_GOLDEN=1 ./build/tests/test_obs_golden_trace
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace drs {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DRS_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("DRS_UPDATE_GOLDEN");
      update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with DRS_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "trace drifted from " << path
      << " — if intentional, regenerate with DRS_UPDATE_GOLDEN=1";
}

// Everything but the high-volume ping_sent flood: the full failure story.
std::vector<obs::TraceEvent> without_ping_sent(
    const std::vector<obs::TraceEvent>& events) {
  return obs::filter_kinds(
      events,
      {obs::TraceEventKind::kPingLost, obs::TraceEventKind::kProbeLost,
       obs::TraceEventKind::kLinkChange, obs::TraceEventKind::kDetourInstall,
       obs::TraceEventKind::kDetourSwitch,
       obs::TraceEventKind::kDetourTeardown,
       obs::TraceEventKind::kDiscoveryStart,
       obs::TraceEventKind::kRelaySelected,
       obs::TraceEventKind::kLeaseGranted, obs::TraceEventKind::kLeaseExpired,
       obs::TraceEventKind::kTcpRetransmit, obs::TraceEventKind::kTcpRto,
       obs::TraceEventKind::kQueueHighWater});
}

// The control-plane skeleton: what the daemons decided, not what they sent.
std::vector<obs::TraceEvent> control_plane(
    const std::vector<obs::TraceEvent>& events) {
  return obs::filter_kinds(
      events,
      {obs::TraceEventKind::kProbeLost, obs::TraceEventKind::kLinkChange,
       obs::TraceEventKind::kDetourInstall,
       obs::TraceEventKind::kDetourSwitch,
       obs::TraceEventKind::kDetourTeardown,
       obs::TraceEventKind::kDiscoveryStart,
       obs::TraceEventKind::kRelaySelected,
       obs::TraceEventKind::kLeaseGranted,
       obs::TraceEventKind::kLeaseExpired});
}

// 4 nodes, warm up 1 s, node 1 loses its network-A NIC for 2 s, then 2 s to
// converge back to pristine. The one scenario every reader of
// docs/OBSERVABILITY.md should look at first.
std::vector<obs::TraceEvent> nic_failure_trace() {
  sim::Simulator sim;
  obs::Tracer tracer;
  sim.set_tracer(&tracer);
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  core::DrsSystem system(network, chaos::fast_campaign_drs_config());
  system.start();
  sim.run_for(util::Duration::seconds(1));
  const net::ComponentIndex nic = net::ClusterNetwork::nic_component(1, 0);
  network.set_component_failed(nic, true);
  sim.run_for(util::Duration::seconds(2));
  network.set_component_failed(nic, false);
  sim.run_for(util::Duration::seconds(2));
  system.stop();
  EXPECT_EQ(tracer.evicted(), 0u) << "golden scenario must fit the ring";
  return tracer.events();
}

TEST(GoldenTrace, FourNodeNicFailure) {
  const std::string actual =
      obs::to_canonical_json(without_ping_sent(nic_failure_trace()));
  // Rerun identity first: the golden is only meaningful if the scenario is
  // a pure function.
  ASSERT_EQ(obs::to_canonical_json(without_ping_sent(nic_failure_trace())),
            actual);
  check_golden("obs_trace_nic_failure.json", actual);
}

TEST(GoldenTrace, ScriptedChaosScheduleCampaignZero) {
  chaos::CampaignConfig config;
  config.capture_trace = true;
  const chaos::CampaignResult result = chaos::run_campaign(0xC4A05, 0, config);
  EXPECT_TRUE(result.violations.empty());
  const std::string actual =
      obs::to_canonical_json(control_plane(result.trace));
  const chaos::CampaignResult rerun = chaos::run_campaign(0xC4A05, 0, config);
  ASSERT_EQ(obs::to_canonical_json(control_plane(rerun.trace)), actual);
  check_golden("obs_trace_chaos_campaign0.json", actual);
}

TEST(GoldenTrace, RunnerTracesAreThreadCountInvariant) {
  chaos::ChaosOptions options;
  options.seed = 2026;
  options.campaigns = 6;
  options.capture_traces = true;
  options.threads = 1;
  const chaos::ChaosReport single = chaos::run_chaos(options);
  ASSERT_EQ(single.campaign_traces.size(), options.campaigns);
  for (unsigned threads : {2u, 8u}) {
    options.threads = threads;
    const chaos::ChaosReport multi = chaos::run_chaos(options);
    EXPECT_EQ(multi.to_json(), single.to_json());
    ASSERT_EQ(multi.campaign_traces.size(), single.campaign_traces.size());
    for (std::size_t i = 0; i < single.campaign_traces.size(); ++i) {
      EXPECT_EQ(multi.campaign_traces[i], single.campaign_traces[i])
          << "campaign " << i << " trace differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace drs
