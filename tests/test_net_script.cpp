#include "net/script.hpp"

#include <gtest/gtest.h>

namespace drs::net {
namespace {

using namespace drs::util::literals;

TEST(Script, ParsesFailRestoreAndComments) {
  const auto result = parse_failure_script(R"(
# comment line
@1.5s fail nic 3 0     # node 3 net A
@2s   fail backplane 1

@4s   restore nic 3 0
)",
                                           8);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.actions.size(), 3u);
  EXPECT_EQ(result.actions[0].at, 1500_ms);
  EXPECT_EQ(result.actions[0].component.kind, ComponentRef::Kind::kNic);
  EXPECT_EQ(result.actions[0].component.node, 3);
  EXPECT_EQ(result.actions[0].component.network, 0);
  EXPECT_TRUE(result.actions[0].fail);
  EXPECT_EQ(result.actions[1].component.kind, ComponentRef::Kind::kBackplane);
  EXPECT_EQ(result.actions[1].component.network, 1);
  EXPECT_FALSE(result.actions[2].fail);
}

TEST(Script, ParsesAllDurationUnits) {
  const auto result = parse_failure_script(
      "@5ns fail nic 0 0\n@6us fail nic 0 1\n@7ms fail nic 1 0\n@8s fail nic 1 1\n",
      4);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.actions[0].at, 5_ns);
  EXPECT_EQ(result.actions[1].at, 6_us);
  EXPECT_EQ(result.actions[2].at, 7_ms);
  EXPECT_EQ(result.actions[3].at, 8_s);
}

TEST(Script, FlapExpandsToAlternatingPairs) {
  const auto result =
      parse_failure_script("@1s flap nic 2 1 period=200ms count=3\n", 8);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.actions.size(), 6u);
  EXPECT_EQ(result.actions[0].at, 1_s);
  EXPECT_TRUE(result.actions[0].fail);
  EXPECT_EQ(result.actions[1].at, 1_s + 200_ms);
  EXPECT_FALSE(result.actions[1].fail);
  EXPECT_EQ(result.actions[5].at, 1_s + 5 * 200_ms);
  EXPECT_FALSE(result.actions[5].fail);
}

TEST(Script, ActionsSortedByOffset) {
  const auto result = parse_failure_script(
      "@3s fail nic 0 0\n@1s fail nic 1 0\n@2s fail nic 2 0\n", 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.actions[0].at, 1_s);
  EXPECT_EQ(result.actions[1].at, 2_s);
  EXPECT_EQ(result.actions[2].at, 3_s);
}

class ScriptErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ScriptErrors, RejectedWithLineDiagnostic) {
  const auto result = parse_failure_script(GetParam(), 8);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 1"), std::string::npos) << result.error;
  EXPECT_TRUE(result.actions.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ScriptErrors,
    ::testing::Values("fail nic 0 0",               // missing @offset
                      "@oops fail nic 0 0",         // bad duration
                      "@1s",                        // no action
                      "@1s explode nic 0 0",        // unknown verb
                      "@1s fail disk 0",            // unknown component
                      "@1s fail nic 99 0",          // node out of range
                      "@1s fail nic 0 7",           // network out of range
                      "@1s fail backplane 9",       // backplane out of range
                      "@1s fail nic 0 0 extra",     // trailing garbage
                      "@1s flap nic 0 0",           // flap missing options
                      "@1s flap nic 0 0 period=0s count=2",  // zero period
                      "@1s flap nic 0 0 period=1s wat=2",    // unknown option
                      "@-1s fail nic 0 0"));        // negative offset

TEST(Script, FormatRoundTripsThroughParser) {
  const auto original = parse_failure_script(
      "@1s fail nic 2 1\n@2s fail backplane 0\n@3s restore nic 2 1\n", 8);
  ASSERT_TRUE(original.ok());
  const std::string rendered = format_script(original.actions);
  const auto reparsed = parse_failure_script(rendered, 8);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  ASSERT_EQ(reparsed.actions.size(), original.actions.size());
  for (std::size_t i = 0; i < original.actions.size(); ++i) {
    EXPECT_EQ(reparsed.actions[i].at, original.actions[i].at);
    EXPECT_EQ(reparsed.actions[i].fail, original.actions[i].fail);
    EXPECT_EQ(reparsed.actions[i].component.kind,
              original.actions[i].component.kind);
  }
}

TEST(Script, ScheduleAppliesAtBasePlusOffset) {
  sim::Simulator sim;
  ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  FailureInjector injector(network);
  const auto script = parse_failure_script(
      "@100ms fail nic 1 0\n@300ms restore nic 1 0\n@200ms fail backplane 1\n", 4);
  ASSERT_TRUE(script.ok());
  sim.run_for(1_s);  // base is not zero
  schedule_script(injector, script.actions, sim.now());

  sim.run_for(150_ms);
  EXPECT_TRUE(network.host(1).nic(0).failed());
  EXPECT_FALSE(network.backplane(1).failed());
  sim.run_for(100_ms);
  EXPECT_TRUE(network.backplane(1).failed());
  sim.run_for(100_ms);
  EXPECT_FALSE(network.host(1).nic(0).failed());
  EXPECT_TRUE(network.backplane(1).failed());  // never restored
}

}  // namespace
}  // namespace drs::net
