// util/hash + util/cache: the primitives the experiment engine's
// content-addressed result cache stands on. The FNV-1a constants and the
// bit-pattern double round-trip are pinned here because every cache key and
// cached payload depends on them staying exactly as they are.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "util/cache.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace {

using namespace drs;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("drs-cache-test-") + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Fnv1a64, PinnedConstants) {
  // Reference values of the standard 64-bit FNV-1a parameters. If these move,
  // every cache entry ever written is orphaned — that must be a conscious
  // format bump, not an accident.
  EXPECT_EQ(util::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a64("foobar"), 0x85944171f73967e8ull);
  static_assert(util::fnv1a64("drs") != 0, "constexpr evaluation works");
}

TEST(Fnv1a64, HexRendering) {
  EXPECT_EQ(util::to_hex64(0), "0000000000000000");
  EXPECT_EQ(util::to_hex64(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(util::to_hex64(~0ull), "ffffffffffffffff");
}

TEST(DoubleBits, RoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.5,
                           0.1,
                           1e-300,
                           1e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           3.141592653589793};
  for (const double v : values) {
    double back = 0.0;
    ASSERT_TRUE(util::double_from_bits_hex(util::double_bits_hex(v), back));
    // Bit equality, not ==: distinguishes -0.0 from 0.0.
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(util::double_bits_hex(back), util::double_bits_hex(v));
  }
  double nan_back = 0.0;
  ASSERT_TRUE(util::double_from_bits_hex(
      util::double_bits_hex(std::numeric_limits<double>::quiet_NaN()),
      nan_back));
  EXPECT_TRUE(std::isnan(nan_back));
}

TEST(DoubleBits, RejectsMalformedInput) {
  double out = 0.0;
  EXPECT_FALSE(util::double_from_bits_hex("", out));
  EXPECT_FALSE(util::double_from_bits_hex("123", out));
  EXPECT_FALSE(util::double_from_bits_hex("zzzzzzzzzzzzzzzz", out));
  EXPECT_FALSE(util::double_from_bits_hex("00000000000000000", out));
}

TEST(DiskCache, DisabledCacheIsANoOp) {
  util::DiskCache cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.put("key", "payload"));
  EXPECT_FALSE(cache.get("key").has_value());
}

TEST(DiskCache, PutThenGetRoundTrips) {
  util::DiskCache cache(temp_dir("roundtrip"));
  ASSERT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.get("k1").has_value());
  ASSERT_TRUE(cache.put("k1", "hello\nworld\n"));
  const auto payload = cache.get("k1");
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello\nworld\n");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  std::filesystem::remove_all(cache.dir());
}

TEST(DiskCache, EmbeddedKeyIsVerifiedOnRead) {
  util::DiskCache cache(temp_dir("collision"));
  ASSERT_TRUE(cache.put("real-key", "real-payload"));
  // Simulate a hash collision: another key's entry lands at this key's path.
  {
    std::ofstream f(cache.entry_path("real-key"), std::ios::binary);
    f << "drs-cache v1\nother-key\nother-payload";
  }
  // The embedded key no longer matches -> miss, never the wrong payload.
  EXPECT_FALSE(cache.get("real-key").has_value());
  std::filesystem::remove_all(cache.dir());
}

TEST(DiskCache, CorruptMagicIsAMiss) {
  util::DiskCache cache(temp_dir("magic"));
  ASSERT_TRUE(cache.put("k", "payload"));
  {
    std::ofstream f(cache.entry_path("k"), std::ios::binary);
    f << "not-a-cache-file";
  }
  EXPECT_FALSE(cache.get("k").has_value());
  std::filesystem::remove_all(cache.dir());
}

TEST(DiskCache, ConcurrentWritersNeverCorrupt) {
  // Many threads race puts and gets over a small key space; every get must
  // observe either a miss or a complete, correct payload. Run under
  // DRS_SANITIZE=thread this also proves the counters are race-free.
  util::DiskCache cache(temp_dir("race"));
  constexpr int kKeys = 8;
  const auto payload_for = [](int k) {
    return "payload-" + std::to_string(k) + std::string(1024, 'x') + "\n";
  };
  util::run_indexed_jobs(64, 8, [&](std::uint64_t i) {
    const int k = static_cast<int>(i) % kKeys;
    const std::string key = "key-" + std::to_string(k);
    cache.put(key, payload_for(k));
    if (const auto got = cache.get(key)) {
      EXPECT_EQ(*got, payload_for(k)) << "torn read on " << key;
    }
    return 0;
  });
  // After the dust settles every key reads back complete.
  for (int k = 0; k < kKeys; ++k) {
    const auto got = cache.get("key-" + std::to_string(k));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload_for(k));
  }
  std::filesystem::remove_all(cache.dir());
}

TEST(DiskCache, RejectsKeysWithNewlines) {
  util::DiskCache cache(temp_dir("badkey"));
  EXPECT_FALSE(cache.put("bad\nkey", "payload"));
  EXPECT_FALSE(cache.put("", "payload"));
  std::filesystem::remove_all(cache.dir());
}

}  // namespace
