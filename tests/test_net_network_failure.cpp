#include "net/failure.hpp"

#include <gtest/gtest.h>

#include <set>

namespace drs::net {
namespace {

using namespace drs::util::literals;

class ClusterNetworkTest : public ::testing::Test {
 protected:
  ClusterNetworkTest() : network(sim, {.node_count = 6, .backplane = {}}) {}
  sim::Simulator sim;
  ClusterNetwork network;
};

TEST_F(ClusterNetworkTest, ComponentCountMatchesModel) {
  EXPECT_EQ(network.component_count(), 2u * 6 + 2);
}

TEST_F(ClusterNetworkTest, ComponentNumberingRoundTrips) {
  for (ComponentIndex c = 0; c < network.component_count(); ++c) {
    const ComponentRef ref = network.component(c);
    if (ref.kind == ComponentRef::Kind::kNic) {
      EXPECT_EQ(ClusterNetwork::nic_component(ref.node, ref.network), c);
    } else {
      EXPECT_EQ(network.backplane_component(ref.network), c);
    }
  }
}

TEST_F(ClusterNetworkTest, NicComponentsComeFirstThenBackplanes) {
  EXPECT_EQ(network.component(0).kind, ComponentRef::Kind::kNic);
  EXPECT_EQ(network.component(0).node, 0);
  EXPECT_EQ(network.component(0).network, 0);
  EXPECT_EQ(network.component(1).network, 1);
  EXPECT_EQ(network.component(11).node, 5);
  EXPECT_EQ(network.component(12).kind, ComponentRef::Kind::kBackplane);
  EXPECT_EQ(network.component(12).network, 0);
  EXPECT_EQ(network.component(13).network, 1);
}

TEST_F(ClusterNetworkTest, AddressAndMacPlanApplied) {
  for (NodeId i = 0; i < 6; ++i) {
    for (NetworkId k = 0; k < 2; ++k) {
      EXPECT_EQ(network.host(i).nic(k).ip(), cluster_ip(k, i));
      EXPECT_EQ(network.host(i).nic(k).mac(), cluster_mac(k, i));
      EXPECT_EQ(network.host(i).nic(k).backplane(), &network.backplane(k));
    }
  }
}

TEST_F(ClusterNetworkTest, BootRoutingTablesHaveBothSubnets) {
  const auto& table = network.host(2).routing_table();
  EXPECT_EQ(table.routes().size(), 2u);
  ASSERT_TRUE(table.lookup(cluster_ip(0, 4)).has_value());
  EXPECT_EQ(table.lookup(cluster_ip(0, 4))->out_ifindex, 0);
  ASSERT_TRUE(table.lookup(cluster_ip(1, 4)).has_value());
  EXPECT_EQ(table.lookup(cluster_ip(1, 4))->out_ifindex, 1);
}

TEST_F(ClusterNetworkTest, SetComponentFailedHitsTheRightPart) {
  network.set_component_failed(ClusterNetwork::nic_component(3, 1), true);
  EXPECT_TRUE(network.host(3).nic(1).failed());
  EXPECT_FALSE(network.host(3).nic(0).failed());
  EXPECT_TRUE(network.component_failed(ClusterNetwork::nic_component(3, 1)));

  network.set_component_failed(network.backplane_component(0), true);
  EXPECT_TRUE(network.backplane(0).failed());
  EXPECT_FALSE(network.backplane(1).failed());

  network.heal_all();
  for (ComponentIndex c = 0; c < network.component_count(); ++c) {
    EXPECT_FALSE(network.component_failed(c));
  }
}

TEST_F(ClusterNetworkTest, InjectorAppliesAtScheduledTime) {
  FailureInjector injector(network);
  const ComponentIndex target = ClusterNetwork::nic_component(1, 0);
  injector.schedule_outage(util::SimTime::zero() + 10_ms, target, 20_ms);
  sim.run_for(5_ms);
  EXPECT_FALSE(network.component_failed(target));
  sim.run_for(10_ms);  // t = 15 ms
  EXPECT_TRUE(network.component_failed(target));
  sim.run_for(20_ms);  // t = 35 ms
  EXPECT_FALSE(network.component_failed(target));
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_TRUE(injector.log()[0].fail);
  EXPECT_FALSE(injector.log()[1].fail);
  EXPECT_EQ(injector.log()[0].at, util::SimTime::zero() + 10_ms);
}

TEST_F(ClusterNetworkTest, InjectorCountsCurrentlyFailed) {
  FailureInjector injector(network);
  EXPECT_EQ(injector.currently_failed(), 0u);
  injector.apply_now(0, true);
  injector.apply_now(5, true);
  EXPECT_EQ(injector.currently_failed(), 2u);
  injector.apply_now(0, false);
  EXPECT_EQ(injector.currently_failed(), 1u);
}

TEST_F(ClusterNetworkTest, RandomFailuresAreDistinctAndInRange) {
  FailureInjector injector(network);
  util::Rng rng(3);
  const auto picked =
      injector.schedule_random_failures(util::SimTime::zero() + 1_ms, 5, rng);
  EXPECT_EQ(picked.size(), 5u);
  std::set<ComponentIndex> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 5u);
  for (auto c : picked) EXPECT_LT(c, network.component_count());
  sim.run_for(2_ms);
  EXPECT_EQ(injector.currently_failed(), 5u);
}

TEST_F(ClusterNetworkTest, RandomFailuresFullDrawCoversEveryComponent) {
  // The boundary draw: count == 2N+2 asks for *every* component. Floyd's
  // sampling must terminate (no rejection loop over a full urn) and yield
  // each component exactly once.
  FailureInjector injector(network);
  util::Rng rng(9);
  const std::size_t all = network.component_count();
  const auto picked =
      injector.schedule_random_failures(util::SimTime::zero() + 1_ms, all, rng);
  ASSERT_EQ(picked.size(), all);
  std::set<ComponentIndex> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), all);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), static_cast<ComponentIndex>(all - 1));
  sim.run_for(2_ms);
  EXPECT_EQ(injector.currently_failed(), all);
}

TEST_F(ClusterNetworkTest, ScheduleScriptAppliesOutOfOrderActions) {
  FailureInjector injector(network);
  injector.schedule_script({{util::SimTime::zero() + 30_ms, 2, false},
                            {util::SimTime::zero() + 10_ms, 2, true},
                            {util::SimTime::zero() + 20_ms, 7, true}});
  sim.run_for(15_ms);
  EXPECT_TRUE(network.component_failed(2));
  sim.run_for(20_ms);  // t = 35 ms
  EXPECT_FALSE(network.component_failed(2));
  EXPECT_TRUE(network.component_failed(7));
  ASSERT_EQ(injector.log().size(), 3u);
  EXPECT_EQ(injector.log()[0].component, 2u);  // log is in application order
  EXPECT_EQ(injector.log()[1].component, 7u);
  EXPECT_EQ(injector.log()[2].component, 2u);
}

TEST_F(ClusterNetworkTest, ObserverSeesEveryAppliedAction) {
  FailureInjector injector(network);
  std::vector<FailureInjector::LogEntry> seen;
  injector.set_observer(
      [&](const FailureInjector::LogEntry& entry) { seen.push_back(entry); });
  injector.apply_now(4, true);
  injector.schedule_outage(util::SimTime::zero() + 5_ms, 9, 5_ms);
  sim.run_for(20_ms);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].component, 4u);
  EXPECT_TRUE(seen[0].fail);
  EXPECT_EQ(seen[1].component, 9u);
  EXPECT_TRUE(seen[1].fail);
  EXPECT_FALSE(seen[2].fail);
  EXPECT_EQ(seen[2].at, util::SimTime::zero() + 10_ms);
}

TEST(ComponentRef, Describes) {
  EXPECT_EQ((ComponentRef{ComponentRef::Kind::kNic, 3, 1}).to_string(),
            "nic(node=3, net=1)");
  EXPECT_EQ((ComponentRef{ComponentRef::Kind::kBackplane, 0, 1}).to_string(),
            "backplane(1)");
}

}  // namespace
}  // namespace drs::net
