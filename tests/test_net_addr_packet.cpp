#include <gtest/gtest.h>

#include "net/addr.hpp"
#include "net/packet.hpp"

namespace drs::net {
namespace {

TEST(Ipv4Addr, OctetsAndToString) {
  const Ipv4Addr a = Ipv4Addr::octets(10, 1, 0, 7);
  EXPECT_EQ(a.to_string(), "10.1.0.7");
  EXPECT_EQ(a.value(), 0x0A010007u);
  EXPECT_TRUE(Ipv4Addr{}.is_unspecified());
  EXPECT_FALSE(a.is_unspecified());
}

TEST(Ipv4Addr, PrefixMatching) {
  const Ipv4Addr a = Ipv4Addr::octets(10, 1, 0, 7);
  EXPECT_TRUE(a.in_prefix(Ipv4Addr::octets(10, 1, 0, 0), 24));
  EXPECT_FALSE(a.in_prefix(Ipv4Addr::octets(10, 2, 0, 0), 24));
  EXPECT_TRUE(a.in_prefix(Ipv4Addr::octets(10, 1, 0, 7), 32));
  EXPECT_FALSE(a.in_prefix(Ipv4Addr::octets(10, 1, 0, 8), 32));
  EXPECT_TRUE(a.in_prefix(Ipv4Addr{}, 0));  // default route matches all
}

TEST(MacAddr, BroadcastAndFormatting) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddr(1).is_broadcast());
  EXPECT_EQ(MacAddr(0x0244520001FFull).to_string(), "02:44:52:00:01:ff");
}

TEST(ClusterAddressing, PlanIsDisjointAcrossNetworks) {
  EXPECT_EQ(cluster_ip(0, 0).to_string(), "10.1.0.1");
  EXPECT_EQ(cluster_ip(1, 0).to_string(), "10.2.0.1");
  EXPECT_EQ(cluster_ip(0, 41).to_string(), "10.1.0.42");
  EXPECT_NE(cluster_ip(0, 5), cluster_ip(1, 5));
  EXPECT_TRUE(cluster_ip(0, 5).in_prefix(cluster_subnet(0), kClusterPrefixLen));
  EXPECT_FALSE(cluster_ip(0, 5).in_prefix(cluster_subnet(1), kClusterPrefixLen));
}

class ClusterIpRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClusterIpRoundTrip, ParseInvertsFormat) {
  const auto network = static_cast<NetworkId>(std::get<0>(GetParam()));
  const auto node = static_cast<NodeId>(std::get<1>(GetParam()));
  NetworkId parsed_network = 99;
  NodeId parsed_node = 999;
  ASSERT_TRUE(parse_cluster_ip(cluster_ip(network, node), parsed_network, parsed_node));
  EXPECT_EQ(parsed_network, network);
  EXPECT_EQ(parsed_node, node);
}

INSTANTIATE_TEST_SUITE_P(AllCorners, ClusterIpRoundTrip,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1, 7, 63, 89)));

TEST(ClusterAddressing, ParseRejectsForeignAddresses) {
  NetworkId network;
  NodeId node;
  EXPECT_FALSE(parse_cluster_ip(Ipv4Addr::octets(192, 168, 0, 1), network, node));
  EXPECT_FALSE(parse_cluster_ip(Ipv4Addr::octets(10, 3, 0, 1), network, node));
  EXPECT_FALSE(parse_cluster_ip(Ipv4Addr::octets(10, 1, 1, 1), network, node));
  EXPECT_FALSE(parse_cluster_ip(Ipv4Addr::octets(10, 1, 0, 0), network, node));
}

TEST(ClusterAddressing, MacsAreUniquePerNic) {
  EXPECT_NE(cluster_mac(0, 3), cluster_mac(1, 3));
  EXPECT_NE(cluster_mac(0, 3), cluster_mac(0, 4));
  EXPECT_FALSE(cluster_mac(0, 0).is_broadcast());
}

struct FixedPayload final : Payload {
  std::uint32_t size;
  explicit FixedPayload(std::uint32_t s) : size(s) {}
  std::uint32_t wire_size() const override { return size; }
  std::string describe() const override { return "fixed"; }
};

TEST(Packet, IpSizeAddsHeader) {
  Packet p;
  p.payload = std::make_shared<FixedPayload>(100);
  EXPECT_EQ(p.ip_size(), 120u);
  Packet empty;
  EXPECT_EQ(empty.ip_size(), kIpHeaderBytes);
}

TEST(Frame, MinimumFrameEnforced) {
  Frame f;
  f.packet.payload = std::make_shared<FixedPayload>(8);  // echo header only
  // 14 + 20 + 8 + 4 = 46 < 64 minimum.
  EXPECT_EQ(f.wire_bytes(), kMinEthFrameBytes);
}

TEST(Frame, LargeFrameUsesRealSize) {
  Frame f;
  f.packet.payload = std::make_shared<FixedPayload>(1000);
  EXPECT_EQ(f.wire_bytes(), 14u + 20u + 1000u + 4u);
}

TEST(Protocol, Names) {
  EXPECT_STREQ(to_string(Protocol::kIcmp), "icmp");
  EXPECT_STREQ(to_string(Protocol::kDrsControl), "drs");
}

}  // namespace
}  // namespace drs::net
