#include "net/backplane.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace drs::net {
namespace {

using namespace drs::util::literals;

struct FixedPayload final : Payload {
  std::uint32_t size;
  explicit FixedPayload(std::uint32_t s) : size(s) {}
  std::uint32_t wire_size() const override { return size; }
  std::string describe() const override { return "fixed"; }
};

/// Records every frame delivered to it.
struct RecordingSink final : FrameSink {
  struct Arrival {
    NetworkId ifindex;
    util::SimTime at;
    std::uint64_t packet_id;
  };
  std::vector<Arrival> arrivals;
  sim::Simulator* sim = nullptr;
  void on_frame(NetworkId ifindex, const Frame& frame) override {
    arrivals.push_back({ifindex, sim->now(), frame.packet.id});
  }
};

Frame make_frame(MacAddr src, MacAddr dst, std::uint32_t payload_bytes,
                 std::uint64_t id = 0) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.packet.payload = std::make_shared<FixedPayload>(payload_bytes);
  f.packet.id = id;
  return f;
}

class BackplaneTest : public ::testing::Test {
 protected:
  BackplaneTest() {
    for (int i = 0; i < 3; ++i) {
      sinks[i].sim = &sim;
      nics.push_back(std::make_unique<Nic>(
          static_cast<NodeId>(i), 0, cluster_mac(0, static_cast<NodeId>(i)),
          cluster_ip(0, static_cast<NodeId>(i)), sinks[i]));
    }
  }

  void attach_all(Backplane& bp) {
    for (auto& nic : nics) bp.attach(*nic);
  }

  sim::Simulator sim;
  RecordingSink sinks[3];
  std::vector<std::unique_ptr<Nic>> nics;
};

TEST_F(BackplaneTest, UnicastReachesAddresseeOnly) {
  Backplane bp(sim, 0);
  attach_all(bp);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 100, 7));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks[1].arrivals[0].packet_id, 7u);
  EXPECT_TRUE(sinks[2].arrivals.empty());  // filtered by MAC
  // The delivery index short-circuits the bystander: its filter never runs.
  EXPECT_EQ(nics[2]->counters().rx_filtered, 0u);
  EXPECT_TRUE(sinks[0].arrivals.empty());  // sender does not hear itself
}

TEST_F(BackplaneTest, DuplicateMacDisablesDeliveryIndex) {
  // Two NICs sharing a MAC is outside the closed-cluster addressing plan, but
  // a hub would deliver to both — so the index must stand down and fan out.
  Backplane bp(sim, 0);
  attach_all(bp);
  RecordingSink clone_sink;
  clone_sink.sim = &sim;
  Nic clone(9, 0, nics[1]->mac(), cluster_ip(0, 9), clone_sink);
  bp.attach(clone);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 100, 5));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  ASSERT_EQ(clone_sink.arrivals.size(), 1u);
  EXPECT_EQ(clone_sink.arrivals[0].packet_id, 5u);
  // The fan-out walk also means bystanders inspect the frame again.
  EXPECT_EQ(nics[2]->counters().rx_filtered, 1u);
}

TEST_F(BackplaneTest, BroadcastReachesEveryoneElse) {
  Backplane bp(sim, 0);
  attach_all(bp);
  nics[0]->send(make_frame(nics[0]->mac(), MacAddr::broadcast(), 100));
  sim.run();
  EXPECT_EQ(sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks[2].arrivals.size(), 1u);
  EXPECT_TRUE(sinks[0].arrivals.empty());
}

TEST_F(BackplaneTest, DeliveryTimeIsSerializationPlusPropagation) {
  Backplane::Config config;
  config.bits_per_second = 100e6;
  config.propagation_delay = 5_us;
  Backplane bp(sim, 0, config);
  attach_all(bp);
  // 1000-byte payload: frame = 14 + 20 + 1000 + 4 = 1038 B = 8304 bits
  // => 83.04 us at 100 Mb/s, + 5 us propagation.
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 1000));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks[1].arrivals[0].at.ns(), 83'040 + 5'000);
}

TEST_F(BackplaneTest, ContentionSerializesFifo) {
  Backplane::Config config;
  config.bits_per_second = 100e6;
  config.propagation_delay = util::Duration::zero();
  Backplane bp(sim, 0, config);
  attach_all(bp);
  // Two frames offered at t=0 share the medium: the second's delivery is
  // delayed by the first's serialization time (two minimum frames of
  // 64 B = 512 bits => 5.12 us each).
  nics[0]->send(make_frame(nics[0]->mac(), nics[2]->mac(), 0, 1));
  nics[1]->send(make_frame(nics[1]->mac(), nics[2]->mac(), 0, 2));
  sim.run();
  ASSERT_EQ(sinks[2].arrivals.size(), 2u);
  EXPECT_EQ(sinks[2].arrivals[0].at.ns(), 5'120);
  EXPECT_EQ(sinks[2].arrivals[1].at.ns(), 10'240);
  EXPECT_DOUBLE_EQ(bp.busy_seconds(), 10'240e-9);
}

TEST_F(BackplaneTest, FailedBackplaneDropsOffered) {
  Backplane bp(sim, 0);
  attach_all(bp);
  bp.set_failed(true);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  sim.run();
  EXPECT_TRUE(sinks[1].arrivals.empty());
  EXPECT_EQ(bp.counters().dropped_failed, 1u);
}

TEST_F(BackplaneTest, FailureLosesInFlightFrames) {
  Backplane::Config config;
  config.propagation_delay = 100_us;
  Backplane bp(sim, 0, config);
  attach_all(bp);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  // Kill the medium while the frame is propagating.
  sim.schedule_after(20_us, [&] { bp.set_failed(true); });
  sim.run();
  EXPECT_TRUE(sinks[1].arrivals.empty());
  EXPECT_EQ(bp.counters().lost_in_flight, 1u);
}

TEST_F(BackplaneTest, RestoreAfterFailureDeliversAgain) {
  Backplane bp(sim, 0);
  attach_all(bp);
  bp.set_failed(true);
  bp.set_failed(false);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  sim.run();
  EXPECT_EQ(sinks[1].arrivals.size(), 1u);
}

TEST_F(BackplaneTest, FailedSenderNicDrops) {
  Backplane bp(sim, 0);
  attach_all(bp);
  nics[0]->set_failed(true);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  sim.run();
  EXPECT_TRUE(sinks[1].arrivals.empty());
  EXPECT_EQ(nics[0]->counters().tx_dropped, 1u);
}

TEST_F(BackplaneTest, FailedReceiverNicDrops) {
  Backplane bp(sim, 0);
  attach_all(bp);
  nics[1]->set_failed(true);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  sim.run();
  EXPECT_TRUE(sinks[1].arrivals.empty());
  EXPECT_EQ(nics[1]->counters().rx_dropped, 1u);
  // The unrelated third NIC is skipped by the delivery index entirely.
  EXPECT_EQ(nics[2]->counters().rx_filtered, 0u);
}

TEST_F(BackplaneTest, BacklogLimitDropsExcess) {
  Backplane::Config config;
  config.bits_per_second = 1e6;  // slow: min frame = 512 us
  config.max_backlog = 1_ms;
  Backplane bp(sim, 0, config);
  attach_all(bp);
  int sent = 0;
  for (int i = 0; i < 10; ++i) {
    nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 0));
    ++sent;
  }
  sim.run();
  EXPECT_GT(bp.counters().dropped_backlog, 0u);
  EXPECT_EQ(sinks[1].arrivals.size() + bp.counters().dropped_backlog,
            static_cast<std::size_t>(sent));
}

TEST_F(BackplaneTest, DetachedNicCannotSend) {
  // nics[0] never attached anywhere.
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 10));
  EXPECT_EQ(nics[0]->counters().tx_dropped, 1u);
}

}  // namespace
}  // namespace drs::net
