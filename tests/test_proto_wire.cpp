// Wire codecs: golden bytes, round trips, checksums, malformed input.
#include "proto/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace drs::proto::wire {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- primitives ---------------------------------------------------------------

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0Full);
  EXPECT_EQ(w.bytes(), (Bytes{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                              0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F}));
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.u8(7);
  w.u16(1234);
  w.u32(567890);
  w.u64(0xDEADBEEFCAFEF00Dull);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 1234);
  EXPECT_EQ(r.u32(), 567890u);
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEF00Dull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, UnderrunSticksNotOk) {
  const Bytes bytes{0x01};
  ByteReader r(bytes);
  EXPECT_EQ(r.u16(), 0x0100u);  // second byte read as 0 after the underrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example: {0x00,0x01,0xf2,0x03,0xf4,0xf5,0xf6,0xf7} -> 0x220d.
  const Bytes bytes{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(bytes), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const Bytes even{0x12, 0x34, 0xAB, 0x00};
  const Bytes odd{0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, VerifiesToZeroWhenEmbedded) {
  IcmpPayload payload;
  payload.ident = 42;
  payload.seq = 7;
  const auto bytes = encode(payload);
  EXPECT_EQ(internet_checksum(bytes), 0);
}

// --- ICMP ---------------------------------------------------------------------

TEST(IcmpWire, GoldenEchoRequest) {
  IcmpPayload payload;
  payload.type = IcmpPayload::Type::kEchoRequest;
  payload.ident = 0x0102;
  payload.seq = 0x0304;
  const auto bytes = encode(payload);
  ASSERT_EQ(bytes.size(), payload.wire_size());
  EXPECT_EQ(bytes[0], 8);                          // echo request
  EXPECT_EQ(bytes[1], 0);                          // code
  EXPECT_EQ((bytes[4] << 8 | bytes[5]), 0x0102);   // ident
  EXPECT_EQ((bytes[6] << 8 | bytes[7]), 0x0304);   // seq
}

TEST(IcmpWire, RoundTripWithData) {
  IcmpPayload payload;
  payload.type = IcmpPayload::Type::kEchoReply;
  payload.ident = 9;
  payload.seq = 65535;
  payload.data_bytes = 56;
  const auto bytes = encode(payload);
  ASSERT_EQ(bytes.size(), payload.wire_size());
  const auto decoded = decode_icmp(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, IcmpPayload::Type::kEchoReply);
  EXPECT_EQ(decoded->ident, 9);
  EXPECT_EQ(decoded->seq, 65535);
  EXPECT_EQ(decoded->data_bytes, 56u);
}

TEST(IcmpWire, CorruptionIsDetected) {
  IcmpPayload payload;
  payload.ident = 1;
  auto bytes = encode(payload);
  bytes[4] ^= 0xFF;  // flip the ident
  EXPECT_FALSE(decode_icmp(bytes).has_value());
}

TEST(IcmpWire, TruncationRejected) {
  const auto bytes = encode(IcmpPayload{});
  const std::span<const std::uint8_t> clipped(bytes.data(), 6);
  EXPECT_FALSE(decode_icmp(clipped).has_value());
}

// --- UDP ----------------------------------------------------------------------

TEST(UdpWire, GoldenHeader) {
  UdpPayload payload;
  payload.src_port = 7001;
  payload.dst_port = 7000;
  payload.data_bytes = 4;
  const auto bytes = encode(payload);
  ASSERT_EQ(bytes.size(), payload.wire_size());
  EXPECT_EQ((bytes[0] << 8 | bytes[1]), 7001);
  EXPECT_EQ((bytes[2] << 8 | bytes[3]), 7000);
  EXPECT_EQ((bytes[4] << 8 | bytes[5]), 12);  // length = 8 + 4
}

TEST(UdpWire, RoundTrip) {
  UdpPayload payload;
  payload.src_port = 1;
  payload.dst_port = 65535;
  payload.data_bytes = 256;
  const auto decoded = decode_udp(encode(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_port, 1);
  EXPECT_EQ(decoded->dst_port, 65535);
  EXPECT_EQ(decoded->data_bytes, 256u);
}

TEST(UdpWire, LengthMismatchRejected) {
  auto bytes = encode(UdpPayload{});
  bytes.push_back(0);  // trailing garbage not covered by the length field
  EXPECT_FALSE(decode_udp(bytes).has_value());
}

// --- TCP ----------------------------------------------------------------------

TEST(TcpWire, RoundTripAllFlags) {
  TcpSegment segment;
  segment.src_port = 40000;
  segment.dst_port = 80;
  segment.seq = 123456789;
  segment.ack_no = 987654321;
  segment.syn = true;
  segment.ack = true;
  segment.fin = true;
  segment.rst = false;
  segment.data_bytes = 1460;
  const auto bytes = encode(segment);
  ASSERT_EQ(bytes.size(), segment.wire_size());
  const auto decoded = decode_tcp(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_port, 40000);
  EXPECT_EQ(decoded->dst_port, 80);
  EXPECT_EQ(decoded->seq, 123456789u);
  EXPECT_EQ(decoded->ack_no, 987654321u);
  EXPECT_TRUE(decoded->syn);
  EXPECT_TRUE(decoded->ack);
  EXPECT_TRUE(decoded->fin);
  EXPECT_FALSE(decoded->rst);
  EXPECT_EQ(decoded->data_bytes, 1460u);
}

TEST(TcpWire, FlagBitsMatchRfc793) {
  TcpSegment segment;
  segment.rst = true;
  const auto bytes = encode(segment);
  EXPECT_EQ(bytes[13], 0x04);  // RST is bit 2
  EXPECT_EQ(bytes[12], 5 << 4);  // data offset 5 words
}

TEST(TcpWire, BadDataOffsetRejected) {
  auto bytes = encode(TcpSegment{});
  bytes[12] = 6 << 4;  // claims options we never emit
  EXPECT_FALSE(decode_tcp(bytes).has_value());
}

// --- DRS control ----------------------------------------------------------------

TEST(DrsWire, GoldenHeaderAndRoundTrip) {
  core::DrsControlPayload payload;
  payload.type = core::DrsMessageType::kRouteOffer;
  payload.request_id = 0x0000000500000007ull;
  payload.requester = 5;
  payload.target = 1;
  payload.relay = 2;
  payload.links_down = 3;
  payload.detours = 4;
  payload.leases_held = 6;
  const auto bytes = encode(payload);
  ASSERT_EQ(bytes.size(), payload.wire_size());
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(bytes[1], 'R');
  EXPECT_EQ(bytes[2], 1);  // version
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(core::DrsMessageType::kRouteOffer));
  const auto decoded = decode_drs(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, core::DrsMessageType::kRouteOffer);
  EXPECT_EQ(decoded->request_id, payload.request_id);
  EXPECT_EQ(decoded->requester, 5);
  EXPECT_EQ(decoded->target, 1);
  EXPECT_EQ(decoded->relay, 2);
  EXPECT_EQ(decoded->links_down, 3);
  EXPECT_EQ(decoded->detours, 4);
  EXPECT_EQ(decoded->leases_held, 6);
}

class DrsWireEveryType
    : public ::testing::TestWithParam<core::DrsMessageType> {};

TEST_P(DrsWireEveryType, RoundTrips) {
  core::DrsControlPayload payload;
  payload.type = GetParam();
  payload.request_id = 99;
  const auto decoded = decode_drs(encode(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, DrsWireEveryType,
    ::testing::Values(core::DrsMessageType::kRouteDiscover,
                      core::DrsMessageType::kRouteOffer,
                      core::DrsMessageType::kRouteSet,
                      core::DrsMessageType::kRouteSetAck,
                      core::DrsMessageType::kRouteTeardown,
                      core::DrsMessageType::kStatusRequest,
                      core::DrsMessageType::kStatusReply));

TEST(DrsWire, RejectsBadMagicVersionAndType) {
  auto good = encode(core::DrsControlPayload{});
  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_drs(bad_magic).has_value());
  auto bad_version = good;
  bad_version[2] = 9;
  EXPECT_FALSE(decode_drs(bad_version).has_value());
  auto bad_type = good;
  bad_type[3] = 200;
  EXPECT_FALSE(decode_drs(bad_type).has_value());
  const std::span<const std::uint8_t> clipped(good.data(), 10);
  EXPECT_FALSE(decode_drs(clipped).has_value());
}

// --- RIP ------------------------------------------------------------------------

TEST(RipWire, GoldenAndRoundTrip) {
  reactive::RipPayload payload;
  payload.advertiser = 3;
  payload.entries.push_back({net::cluster_ip(0, 1), 1});
  payload.entries.push_back({net::cluster_ip(1, 4), 2});
  const auto bytes = encode(payload);
  ASSERT_EQ(bytes.size(), payload.wire_size());
  EXPECT_EQ(bytes[0], 2);  // command: response
  EXPECT_EQ(bytes[1], 1);  // version
  EXPECT_EQ((bytes[4] << 8 | bytes[5]), 2);  // AF_INET
  const auto decoded = decode_rip(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->advertiser, 3);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].destination, net::cluster_ip(0, 1));
  EXPECT_EQ(decoded->entries[0].metric, 1);
  EXPECT_EQ(decoded->entries[1].destination, net::cluster_ip(1, 4));
  EXPECT_EQ(decoded->entries[1].metric, 2);
}

TEST(RipWire, EmptyAdvertisementIsJustHeader) {
  reactive::RipPayload payload;
  const auto bytes = encode(payload);
  EXPECT_EQ(bytes.size(), 4u);
  const auto decoded = decode_rip(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->entries.empty());
}

TEST(RipWire, RejectsRaggedEntries) {
  auto bytes = encode(reactive::RipPayload{});
  bytes.resize(bytes.size() + 10);  // half an entry
  EXPECT_FALSE(decode_rip(bytes).has_value());
}

// --- Decoder robustness (deterministic fuzz) -----------------------------------

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverMisbehave) {
  // Every decoder must treat arbitrary octets as data: either reject them or
  // produce a value consistent with the input length — never crash, never
  // read out of bounds (ASAN-clean by construction of ByteReader).
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes bytes(rng.next_below(64), 0);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    if (auto icmp = decode_icmp(bytes)) {
      EXPECT_EQ(icmp->wire_size(), bytes.size());
    }
    if (auto udp = decode_udp(bytes)) {
      EXPECT_EQ(udp->wire_size(), bytes.size());
    }
    if (auto tcp = decode_tcp(bytes)) {
      EXPECT_EQ(tcp->wire_size(), bytes.size());
    }
    if (auto drs = decode_drs(bytes)) {
      EXPECT_EQ(drs->wire_size(), 24u);
    }
    if (auto rip = decode_rip(bytes)) {
      EXPECT_EQ(rip->wire_size(), bytes.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(DecoderFuzz, EncodeDecodeIsIdentityUnderMutationOrRejection) {
  // Flip one byte of a valid DRS frame at every position: each mutant either
  // decodes to something structurally valid or is rejected — and reverting
  // the flip always restores the original.
  core::DrsControlPayload payload;
  payload.type = core::DrsMessageType::kRouteSet;
  payload.request_id = 0xABCDEF;
  payload.requester = 3;
  payload.target = 4;
  payload.relay = 5;
  const auto golden = encode(payload);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    auto mutant = golden;
    mutant[i] ^= 0x5A;
    const auto decoded = decode_drs(mutant);
    if (decoded) {
      // A surviving mutant must still round-trip through the codec.
      EXPECT_EQ(encode(*decoded), mutant) << "byte " << i;
    }
  }
  const auto reference = decode_drs(golden);
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(encode(*reference), golden);
}

}  // namespace
}  // namespace drs::proto::wire
