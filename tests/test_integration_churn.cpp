// Integration stress: randomized failure/repair churn, lossy media and
// asymmetric failures against the full DRS stack. These are the "does the
// protocol converge from ANY history" properties.
#include <gtest/gtest.h>

#include "analytic/enumerate.hpp"
#include "core/system.hpp"
#include "net/failure.hpp"
#include "proto/tcp_lite.hpp"

namespace drs::core {
namespace {

using namespace drs::util::literals;

DrsConfig fast_config() {
  DrsConfig c;
  c.probe_interval = 50_ms;
  c.probe_timeout = 20_ms;
  c.failures_to_down = 2;
  c.discover_timeout = 25_ms;
  return c;
}

/// Randomized churn, then heal everything: the system must return to the
/// pristine state — direct modes, empty DRS route sets, no leases.
class ChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTest, ConvergesAfterArbitraryFailureHistory) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  sim.run_for(300_ms);

  // 30 random fail/restore flips over ~6 simulated seconds.
  for (int i = 0; i < 30; ++i) {
    const auto component =
        static_cast<net::ComponentIndex>(rng.next_below(network.component_count()));
    network.set_component_failed(component,
                                 !network.component_failed(component));
    sim.run_for(util::Duration::millis(rng.next_int(20, 400)));
  }

  network.heal_all();
  sim.run_for(3_s);

  for (net::NodeId i = 0; i < 6; ++i) {
    const DrsDaemon& daemon = system.daemon(i);
    EXPECT_TRUE(daemon.host_routes_empty()) << "node " << i << " seed " << seed;
    EXPECT_EQ(daemon.active_leases(), 0u) << "node " << i;
    EXPECT_EQ(daemon.links().down_count(), 0u) << "node " << i;
    for (net::NodeId j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_EQ(daemon.peer_mode(j), PeerRouteMode::kDirect)
          << i << "->" << j << " seed " << seed;
    }
  }
  for (net::NodeId a = 0; a < 6; ++a) {
    for (net::NodeId b = a + 1; b < 6; ++b) {
      EXPECT_TRUE(system.test_reachability(a, b)) << a << "-" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// Mid-churn snapshot: whatever the failure pattern is when the dust
/// settles, packet-level reachability of (0,1) must equal the model.
class ChurnSnapshotTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSnapshotTest, SteadyStateMatchesModelAfterChurn) {
  util::Rng rng(GetParam() * 977);
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  sim.run_for(300_ms);

  for (int i = 0; i < 12; ++i) {
    const auto component =
        static_cast<net::ComponentIndex>(rng.next_below(network.component_count()));
    network.set_component_failed(component, rng.next_bernoulli(0.6));
    sim.run_for(util::Duration::millis(rng.next_int(10, 200)));
  }
  sim.run_for(2_s);  // converge on the final pattern

  analytic::ComponentSet failed;
  for (net::ComponentIndex c = 0; c < network.component_count(); ++c) {
    if (network.component_failed(c)) failed.set(c);
  }
  const bool expected = analytic::pair_connected(5, failed, 0, 1);
  EXPECT_EQ(system.test_reachability(0, 1), expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSnapshotTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- DRS on lossy media -------------------------------------------------------

TEST(DrsUnderLoss, SuspectStateAbsorbsTransientLoss) {
  // 2 % random frame loss: single lost echoes must NOT trigger failovers
  // (failures_to_down = 2 means two consecutive losses on the same link).
  sim::Simulator sim;
  net::Backplane::Config lossy;
  lossy.frame_loss_rate = 0.02;
  lossy.seed = 7;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = lossy});
  DrsConfig config = fast_config();
  config.failures_to_down = 3;  // extra tolerance on noisy media
  DrsSystem system(network, config);
  system.start();
  sim.run_for(10_s);

  std::uint64_t failovers = 0;
  std::uint64_t failed_probes = 0;
  for (net::NodeId i = 0; i < 6; ++i) {
    failovers += system.daemon(i).metrics().links_declared_down;
    failed_probes += system.daemon(i).metrics().probes_failed;
  }
  EXPECT_GT(failed_probes, 0u);  // the loss really happened
  // P[3 consecutive losses] ~ (1 - 0.98^2)^3 ~ 6e-5 per link-cycle; with
  // 6*5*2 links over 100 cycles a couple of unlucky streaks may appear, but
  // it must stay rare — and the links must all be back UP at the end.
  EXPECT_LT(failovers, 8u);
  for (net::NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(system.daemon(i).links().down_count(), 0u) << "node " << i;
  }
}

TEST(DrsUnderLoss, RealFailureStillDetectedThroughNoise) {
  sim::Simulator sim;
  net::Backplane::Config lossy;
  lossy.frame_loss_rate = 0.05;
  lossy.seed = 11;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = lossy});
  DrsSystem system(network, fast_config());
  system.start();
  sim.run_for(1_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kViaNetworkB);
}

// --- Asymmetric NIC failures ----------------------------------------------------

TEST(AsymmetricFailure, TxOnlyDeathHealsIntoAsymmetricPaths) {
  // Node 1's net-A transmitter dies while its receiver still works. The
  // victim's own daemon sees all of its net-A links fail (its probes cannot
  // leave) and pins its *outbound* traffic — including echo replies — to
  // net B. From then on node 0's net-A probes to node 1 succeed again:
  // request over net A (deliverable — RX works), reply back over net B. The
  // steady state is an asymmetric but fully working path, so node 0
  // correctly keeps (or returns to) direct mode; only the victim detours.
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  sim.run_for(500_ms);
  network.host(1).nic(0).set_tx_failed(true);
  sim.run_for(2_s);
  EXPECT_EQ(system.daemon(1).peer_mode(0), PeerRouteMode::kViaNetworkB);
  EXPECT_TRUE(system.test_reachability(0, 1));
  EXPECT_TRUE(system.test_reachability(1, 0));
  // The forward direction still uses net A: packets keep arriving on the
  // half-dead NIC.
  EXPECT_GT(network.host(1).nic(0).counters().rx_frames, 0u);
}

TEST(AsymmetricFailure, RxOnlyDeathIsDetectedAndRouted) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  sim.run_for(500_ms);
  network.host(1).nic(0).set_rx_failed(true);
  sim.run_for(1_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kViaNetworkB);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

// --- TCP over lossy media under DRS --------------------------------------------

// Loss-seed sweep: whatever corruption pattern the medium draws, TCP-lite
// under DRS must deliver every byte in order or reset — never corrupt.
class TcpLossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpLossSweep, IntegrityUnderRandomLoss) {
  sim::Simulator sim;
  net::Backplane::Config lossy;
  lossy.frame_loss_rate = 0.05;
  lossy.seed = GetParam();
  net::ClusterNetwork network(sim, {.node_count = 3, .backplane = lossy});

  proto::TcpService tcp0(network.host(0));
  proto::TcpService tcp1(network.host(1));
  proto::TcpConnectionPtr server;
  std::uint64_t last_total = 0;
  bool monotone = true;
  tcp1.listen(80, [&](proto::TcpConnectionPtr c) {
    server = c;
    c->on_receive = [&](std::uint64_t total) {
      monotone = monotone && total >= last_total;
      last_total = total;
    };
  });
  proto::TcpConfig config;
  config.max_retries = 15;
  config.max_rto = 2_s;  // bound the backoff so the run decides within 120 s
  auto client = tcp0.connect(net::cluster_ip(0, 1), 80, config);
  sim.run_for(2_s);
  if (client->state() != proto::TcpConnection::State::kEstablished) {
    GTEST_SKIP() << "handshake lost to the medium for this seed";
  }
  client->offer(100'000);
  client->close();
  sim.run_for(120_s);
  EXPECT_TRUE(monotone);
  ASSERT_TRUE(server != nullptr);
  if (client->state() == proto::TcpConnection::State::kClosed) {
    EXPECT_EQ(server->stats().bytes_delivered, 100'000u);
  } else {
    // A reset is acceptable under sustained loss; silent corruption is not.
    EXPECT_EQ(client->state(), proto::TcpConnection::State::kReset);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpLossSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(TcpUnderLoss, TransferCompletesDespiteLossAndFailover) {
  sim::Simulator sim;
  net::Backplane::Config lossy;
  lossy.frame_loss_rate = 0.02;
  lossy.seed = 23;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = lossy});
  DrsSystem system(network, fast_config());
  system.start();

  proto::TcpService tcp0(network.host(0));
  proto::TcpService tcp1(network.host(1));
  proto::TcpConnectionPtr server;
  tcp1.listen(80, [&](proto::TcpConnectionPtr c) { server = c; });
  proto::TcpConfig tcp_config;
  tcp_config.max_retries = 20;  // lossy medium: be patient
  auto client = tcp0.connect(net::cluster_ip(0, 1), 80, tcp_config);
  sim.run_for(500_ms);
  client->offer(300'000);
  sim.schedule_after(100_ms, [&] {
    network.host(1).nic(0).set_failed(true);
  });
  sim.run_for(60_s);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->stats().bytes_delivered, 300'000u);
  EXPECT_GT(client->stats().retransmissions, 0u);
  EXPECT_NE(client->state(), proto::TcpConnection::State::kReset);
}

}  // namespace
}  // namespace drs::core
