#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <span>
#include <vector>

namespace drs::util {
namespace {

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
  EXPECT_NE(a, b);
}

TEST(Mix64, OrderSensitiveAndDeterministic) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_int(-2, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2, 3}));
}

TEST(Rng, BernoulliMeanApproximatesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanApproximatesParameter) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, UniformityChiSquaredCoarse) {
  Rng rng(19);
  constexpr int kBuckets = 16;
  std::array<int, kBuckets> counts{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(kBuckets))];
  }
  const double expected = static_cast<double>(n) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; 99.9th percentile ~ 37.7. Deterministic seed, so not flaky.
  EXPECT_LT(chi2, 37.7);
}

class SampleDistinctTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SampleDistinctTest, ProducesSortedDistinctInRange) {
  const auto [n, k] = GetParam();
  Rng rng(23, static_cast<std::uint64_t>(n * 1000 + k));
  std::vector<std::uint32_t> out;
  for (int rep = 0; rep < 50; ++rep) {
    rng.sample_distinct(static_cast<std::uint64_t>(n), static_cast<std::size_t>(k), out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
    for (auto v : out) EXPECT_LT(v, static_cast<std::uint32_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SampleDistinctTest,
                         ::testing::Values(std::pair{1, 0}, std::pair{1, 1},
                                           std::pair{5, 5}, std::pair{10, 3},
                                           std::pair{130, 10}, std::pair{64, 64},
                                           std::pair{1000, 1}));

TEST(SampleDistinct, UniformOverSubsets) {
  // n=4, k=2: all 6 subsets should be ~equally likely.
  Rng rng(29);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
  std::vector<std::uint32_t> out;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    rng.sample_distinct(4, 2, out);
    ++counts[{out[0], out[1]}];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [subset, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 6.0, 0.01);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace drs::util
