#include "reactive/rip_lite.hpp"

#include <gtest/gtest.h>

#include "proto/icmp.hpp"

namespace drs::reactive {
namespace {

using namespace drs::util::literals;

RipConfig fast_rip() {
  // Scaled-down classic RIP: 1 s advertisements, 6 s timeout (30/180
  // divided by 30) so tests run quickly with the same structure.
  RipConfig c;
  c.advertise_interval = 1_s;
  c.route_timeout = 6_s;
  return c;
}

class RipTest : public ::testing::Test {
 protected:
  RipTest() : network(sim, {.node_count = 4, .backplane = {}}) {
    for (net::NodeId i = 0; i < 4; ++i) {
      icmp.push_back(std::make_unique<proto::IcmpService>(network.host(i)));
    }
  }

  bool ping(net::NodeId from, net::Ipv4Addr to) {
    bool ok = false;
    bool done = false;
    proto::PingOptions options;
    options.timeout = 50_ms;
    icmp[from]->ping(to, options, [&](const proto::PingResult& r) {
      ok = r.success;
      done = true;
    });
    const auto deadline = sim.now() + 100_ms;
    while (!done && sim.now() < deadline && !sim.idle()) sim.step();
    return ok;
  }

  sim::Simulator sim;
  net::ClusterNetwork network;
  std::vector<std::unique_ptr<proto::IcmpService>> icmp;
};

TEST_F(RipTest, LearnsHostRoutesFromAdvertisements) {
  RipSystem rip(network, fast_rip());
  rip.start();
  sim.run_for(3_s);
  // Every node should have learned /32 routes for every other node's
  // addresses (2 addresses x 3 peers).
  EXPECT_EQ(rip.daemon(0).table_size(), 6u);
  EXPECT_GT(rip.daemon(0).metrics().advertisements_received, 0u);
  const auto route = network.host(0).routing_table().lookup(net::cluster_ip(0, 2));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->prefix_len, 32);
  EXPECT_EQ(route->origin, net::RouteOrigin::kRip);
}

TEST_F(RipTest, RoutesExpireWithoutRefresh) {
  RipSystem rip(network, fast_rip());
  rip.start();
  sim.run_for(3_s);
  ASSERT_EQ(rip.daemon(0).table_size(), 6u);
  // Node 3 goes completely silent (both NICs dead).
  network.set_component_failed(net::ClusterNetwork::nic_component(3, 0), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(3, 1), true);
  // Two full timeout windows: the direct entries expire first, and any
  // phantom metric-2 entries re-learned from a neighbour's not-yet-expired
  // table die in the second window.
  sim.run_for(fast_rip().route_timeout * 2 + 2_s);
  EXPECT_EQ(rip.daemon(0).table_size(), 4u);  // node 3's two addresses gone
  EXPECT_GE(rip.daemon(0).metrics().routes_expired, 2u);
}

TEST_F(RipTest, EventualFailoverAfterTimeout) {
  RipSystem rip(network, fast_rip());
  rip.start();
  sim.run_for(3_s);
  ASSERT_TRUE(ping(0, net::cluster_ip(0, 1)));

  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  // Immediately after: broken (RIP has not noticed anything).
  sim.run_for(100_ms);
  EXPECT_FALSE(ping(0, net::cluster_ip(0, 1)));
  // After the stale route expires, node 1's net-B advertisements provide an
  // alternative path for its net-A address.
  sim.run_for(fast_rip().route_timeout + 3 * fast_rip().advertise_interval);
  EXPECT_TRUE(ping(0, net::cluster_ip(0, 1)));
}

TEST_F(RipTest, RecoveryIsSlowerThanTimeoutWindow) {
  RipSystem rip(network, fast_rip());
  rip.start();
  sim.run_for(3_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  // Well inside the timeout window, the stale direct route still wins:
  // reactive protocols cannot fix what they have not timed out.
  sim.run_for(fast_rip().route_timeout / 2);
  EXPECT_FALSE(ping(0, net::cluster_ip(0, 1)));
}

TEST_F(RipTest, StopsCleanly) {
  RipSystem rip(network, fast_rip());
  rip.start();
  sim.run_for(2_s);
  rip.stop();
  const auto sent = rip.daemon(0).metrics().advertisements_sent;
  sim.run_for(5_s);
  EXPECT_EQ(rip.daemon(0).metrics().advertisements_sent, sent);
}

TEST(RipPayloadSize, TwentyBytesPerEntryPlusHeader) {
  RipPayload payload;
  EXPECT_EQ(payload.wire_size(), 4u);
  payload.entries.push_back({net::cluster_ip(0, 1), 1});
  payload.entries.push_back({net::cluster_ip(1, 1), 1});
  EXPECT_EQ(payload.wire_size(), 44u);
  EXPECT_NE(payload.describe().find("2 routes"), std::string::npos);
}

}  // namespace
}  // namespace drs::reactive
