// Extensions beyond the paper's figures: the unconditional q-model (the
// paper's framing for Equation 1) and system-wide (all live pairs)
// survivability.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/enumerate.hpp"
#include "analytic/survivability.hpp"
#include "montecarlo/estimator.hpp"

namespace drs::analytic {
namespace {

// --- failure_count_pmf -------------------------------------------------------

TEST(FailurePmf, SumsToOne) {
  for (std::int64_t n : {2, 8, 32, 64}) {
    for (double q : {0.001, 0.01, 0.1, 0.5}) {
      double total = 0.0;
      for (std::int64_t f = 0; f <= component_count(n); ++f) {
        total += failure_count_pmf(n, f, q);
      }
      EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n << " q=" << q;
    }
  }
}

TEST(FailurePmf, DegenerateEndpoints) {
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, component_count(8), 1.0), 1.0);
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, 0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(failure_count_pmf(8, 99, 0.5), 0.0);
}

TEST(FailurePmf, MeanMatchesBinomial) {
  const std::int64_t n = 16;
  const double q = 0.07;
  double mean = 0.0;
  for (std::int64_t f = 0; f <= component_count(n); ++f) {
    mean += static_cast<double>(f) * failure_count_pmf(n, f, q);
  }
  EXPECT_NEAR(mean, q * static_cast<double>(component_count(n)), 1e-9);
}

TEST(FailurePmf, MultipleFailuresDecayExponentially) {
  // The paper: "the probability of multiple failures in a system decreases
  // exponentially" (q^f scaling). Check successive ratios are ~O(q).
  const std::int64_t n = 12;
  const double q = 0.01;
  for (std::int64_t f = 1; f <= 4; ++f) {
    const double ratio =
        failure_count_pmf(n, f + 1, q) / failure_count_pmf(n, f, q);
    EXPECT_LT(ratio, 3.0 * q * static_cast<double>(component_count(n)));
    EXPECT_GT(ratio, 0.0);
  }
}

// --- unconditional success ----------------------------------------------------

TEST(Unconditional, PerfectComponentsPerfectService) {
  EXPECT_DOUBLE_EQ(p_success_unconditional(8, 0.0), 1.0);
}

TEST(Unconditional, CertainFailureKillsService) {
  EXPECT_NEAR(p_success_unconditional(8, 1.0), 0.0, 1e-12);
}

TEST(Unconditional, MonotoneDecreasingInQ) {
  double previous = 1.1;
  for (double q : {0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 0.9}) {
    const double p = p_success_unconditional(16, q);
    EXPECT_LT(p, previous);
    EXPECT_GE(p, 0.0);
    previous = p;
  }
}

TEST(Unconditional, LargerClustersSurviveSmallQBetter) {
  // At small q, more nodes = more relays; the pair criterion improves.
  const double q = 0.02;
  EXPECT_GT(p_success_unconditional(32, q), p_success_unconditional(4, q));
}

TEST(Unconditional, MatchesDirectBernoulliEnumeration) {
  // Small system: enumerate all 2^(2N+2) component states directly.
  const std::int64_t n = 3;
  const std::int64_t m = component_count(n);  // 8 components
  const double q = 0.13;
  double expected = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << m); ++mask) {
    ComponentSet failed;
    for (std::int64_t c = 0; c < m; ++c) {
      if ((mask >> c) & 1u) failed.set(c);
    }
    const int bits = __builtin_popcountll(mask);
    const double weight = std::pow(q, bits) *
                          std::pow(1.0 - q, static_cast<double>(m - bits));
    if (pair_connected(n, failed, 0, 1)) expected += weight;
  }
  EXPECT_NEAR(p_success_unconditional(n, q), expected, 1e-12);
}

// --- all-pairs (system-wide) criterion ----------------------------------------

TEST(AllPairs, StricterThanPairWhenEndpointsAlive) {
  // The two criteria are NOT comparable in general: the all-pairs criterion
  // excludes fully dead hosts (vacuous success possible where the designated
  // pair fails because an endpoint died). Conditioned on both designated
  // endpoints being network-alive, all-pairs IS the stricter event.
  for (std::int64_t n : {3, 4, 5}) {
    for (std::int64_t f = 0; f <= std::min<std::int64_t>(6, component_count(n)); ++f) {
      u128 all_pairs_and_alive = 0;
      u128 pair_ok = 0;
      for_each_subset(component_count(n), f, [&](const ComponentSet& failed) {
        const bool a_alive = !failed.test(0) || !failed.test(1);
        const bool b_alive = !failed.test(2) || !failed.test(3);
        if (pair_connected(n, failed, 0, 1)) ++pair_ok;
        if (a_alive && b_alive && all_live_pairs_connected(n, failed)) {
          ++all_pairs_and_alive;
        }
      });
      EXPECT_LE(all_pairs_and_alive, pair_ok) << "n=" << n << " f=" << f;
      EXPECT_EQ(pair_ok, success_count(n, f));  // incidental re-validation
    }
  }
}

TEST(AllPairs, CanExceedPairCriterionViaDeadHostExclusion) {
  // Demonstrate the incomparability: with N=3 and many failures, killing an
  // endpoint outright makes the pair criterion fail while the rest of the
  // (smaller) system stays consistent.
  EXPECT_GT(p_all_pairs_success(3, 5), p_success(3, 5));
}

TEST(AllPairs, TrivialCases) {
  EXPECT_DOUBLE_EQ(p_all_pairs_success(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(p_all_pairs_success(4, 1), 1.0);  // f=1 cannot cut anyone
}

TEST(AllPairs, McEstimatorAgreesWithEnumeration) {
  mc::EstimateOptions options;
  options.iterations = 40000;
  options.seed = 321;
  for (auto [n, f] : {std::pair<std::int64_t, std::int64_t>{5, 3}, {6, 4}}) {
    const double exact = p_all_pairs_success(n, f);
    const auto estimate = mc::estimate_system_success(n, f, options);
    const double slack = 1.5 * estimate.wilson95.width() / 2;
    EXPECT_NEAR(estimate.p, exact, std::max(slack, 1e-3))
        << "n=" << n << " f=" << f;
  }
}

TEST(AllPairs, BothEstimatorsTrackTheirOwnExactValues) {
  mc::EstimateOptions options;
  options.iterations = 30000;
  options.seed = 55;
  const auto pair = mc::estimate_p_success(6, 4, options);
  const auto system = mc::estimate_system_success(6, 4, options);
  EXPECT_NEAR(pair.p, p_success(6, 4), 0.02);
  EXPECT_NEAR(system.p, p_all_pairs_success(6, 4), 0.02);
  // Different criteria, independent streams: almost surely distinct counts.
  EXPECT_NE(system.successes, pair.successes);
}

}  // namespace
}  // namespace drs::analytic
