// Steady-state allocation audit: after warmup, the probe hot path must run
// entirely out of recycled storage — no new arena chunks, no event-slot
// growth, no flight-pool growth — while probes keep flowing. The counters
// come from DrsSystem::collect_metrics, so this test also pins the metric
// names docs/PERFORMANCE.md documents.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cluster/fleet.hpp"
#include "cluster/partition.hpp"
#include "core/builder.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"

namespace drs {
namespace {

struct AllocSnapshot {
  std::int64_t arena_chunks = 0;
  std::int64_t arena_bytes = 0;
  std::int64_t arena_oversize = 0;
  std::int64_t event_slots = 0;
  std::int64_t flight_slots_a = 0;
  std::int64_t flight_slots_b = 0;
  std::int64_t probes_sent = 0;
  std::int64_t arena_allocations = 0;
  std::int64_t arena_freelist_hits = 0;
};

AllocSnapshot snapshot(const core::DrsSystem& system) {
  // A fresh registry per snapshot: counters in collect_metrics are absolute
  // re-adds, so reusing one registry would double-count.
  obs::MetricRegistry registry;
  system.collect_metrics(registry);
  AllocSnapshot snap;
  snap.arena_chunks = registry.gauge("arena.chunks").value();
  snap.arena_bytes = registry.gauge("arena.bytes_reserved").value();
  snap.arena_oversize = registry.counter("arena.oversize").value();
  snap.event_slots = registry.gauge("sim.event_slots").value();
  snap.flight_slots_a =
      registry.gauge(obs::MetricRegistry::scoped("backplane", 0, "flight_slots"))
          .value();
  snap.flight_slots_b =
      registry.gauge(obs::MetricRegistry::scoped("backplane", 1, "flight_slots"))
          .value();
  snap.arena_allocations = registry.counter("arena.allocations").value();
  snap.arena_freelist_hits = registry.counter("arena.freelist_hits").value();
  for (std::uint64_t node = 0; node < 4; ++node) {
    snap.probes_sent +=
        registry
            .counter(obs::MetricRegistry::scoped("daemon", node, "probes_sent"))
            .value();
  }
  return snap;
}

TEST(ZeroAllocSteadyState, ProbeCyclesReuseWarmedUpStorage) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  core::DrsSystem system(network, core::DrsConfig{});
  system.start();

  // Warmup: several full monitoring cycles so every pool reaches its peak —
  // probe payloads, event slots, in-flight frames, outstanding tables.
  sim.run_for(util::Duration::seconds(2));
  const AllocSnapshot warm = snapshot(system);
  ASSERT_GT(warm.probes_sent, 0);
  ASSERT_GT(warm.arena_chunks, 0);

  // Steady state: 5 more seconds of probing must not grow anything.
  sim.run_for(util::Duration::seconds(5));
  const AllocSnapshot steady = snapshot(system);

  EXPECT_GT(steady.probes_sent, warm.probes_sent) << "no probe traffic ran";
  EXPECT_EQ(steady.arena_chunks, warm.arena_chunks)
      << "arena grew new chunks after warmup";
  EXPECT_EQ(steady.arena_bytes, warm.arena_bytes);
  EXPECT_EQ(steady.arena_oversize, warm.arena_oversize)
      << "a hot-path allocation bypassed the size classes";
  EXPECT_EQ(steady.event_slots, warm.event_slots)
      << "the event queue grew its slot table after warmup";
  EXPECT_EQ(steady.flight_slots_a, warm.flight_slots_a)
      << "backplane A grew its in-flight frame pool after warmup";
  EXPECT_EQ(steady.flight_slots_b, warm.flight_slots_b)
      << "backplane B grew its in-flight frame pool after warmup";

  // The pool is being exercised, not bypassed: allocations keep happening
  // and (once warm) they are served from the free lists.
  EXPECT_GT(steady.arena_allocations, warm.arena_allocations);
  EXPECT_GT(steady.arena_freelist_hits, warm.arena_freelist_hits);
}

TEST(ZeroAllocSteadyState, FleetScaleProbeFabricReusesWarmedUpStorage) {
  // The paper's full deployment shape — 27 clusters of 8, one simulator —
  // must hold the same steady-state guarantee as a single cluster: the
  // geometry-derived reservations (event queue, flight pools, timeout
  // records) reach their peak during warmup and never grow again.
  sim::Simulator sim;
  cluster::FleetConfig config;
  config.clusters = 27;
  config.nodes_per_cluster = 8;
  cluster::Fleet fleet(sim, config);
  fleet.start();

  const auto fleet_snapshot = [&fleet] {
    obs::MetricRegistry registry;
    fleet.collect_metrics(registry);
    AllocSnapshot snap;
    snap.arena_chunks = registry.gauge("arena.chunks").value();
    snap.arena_bytes = registry.gauge("arena.bytes_reserved").value();
    snap.arena_oversize = registry.counter("arena.oversize").value();
    snap.event_slots = registry.gauge("sim.event_slots").value();
    snap.flight_slots_a = registry.gauge("fleet.flight_slots").value();
    snap.probes_sent = static_cast<std::int64_t>(fleet.total_probes_sent());
    return snap;
  };

  fleet.settle(util::Duration::seconds(2));
  const AllocSnapshot warm = fleet_snapshot();
  ASSERT_GT(warm.probes_sent, 0);
  ASSERT_GT(warm.arena_chunks, 0);

  fleet.settle(util::Duration::seconds(5));
  const AllocSnapshot steady = fleet_snapshot();

  EXPECT_GT(steady.probes_sent, warm.probes_sent) << "no probe traffic ran";
  EXPECT_EQ(steady.arena_chunks, warm.arena_chunks)
      << "arena grew new chunks after fleet warmup";
  EXPECT_EQ(steady.arena_bytes, warm.arena_bytes);
  EXPECT_EQ(steady.arena_oversize, warm.arena_oversize)
      << "a hot-path allocation bypassed the size classes";
  EXPECT_EQ(steady.event_slots, warm.event_slots)
      << "the event queue grew its slot table after fleet warmup";
  EXPECT_EQ(steady.flight_slots_a, warm.flight_slots_a)
      << "a backplane grew its in-flight frame pool after fleet warmup";
  fleet.stop();
}

TEST(ZeroAllocSteadyState, ShardedFleetReusesWarmedUpStoragePerShard) {
  // The sharded fleet must hold the zero-alloc guarantee per shard: every
  // shard's queue and arena reach their peak during warmup and stay flat
  // while probes keep flowing, and the aggregated gauges (summed over
  // shards) stay flat too. Windows keep running, so the journal/merge
  // machinery is also covered by the "no growth" check — its scratch
  // vectors retain capacity across windows.
  cluster::ShardedFleetConfig config;
  config.fleet.clusters = 8;
  config.fleet.nodes_per_cluster = 4;
  config.shards = 4;
  cluster::ShardedFleet fleet(config);
  fleet.start();

  struct ShardSnapshot {
    std::int64_t chunks = 0;
    std::int64_t bytes = 0;
    std::int64_t event_slots = 0;
  };
  struct FleetSnapshot {
    AllocSnapshot total;
    std::int64_t windows = 0;
    ShardSnapshot shard[4];
  };
  const auto sharded_snapshot = [&fleet] {
    obs::MetricRegistry registry;
    fleet.collect_metrics(registry);
    FleetSnapshot snap;
    snap.total.arena_chunks = registry.gauge("arena.chunks").value();
    snap.total.arena_bytes = registry.gauge("arena.bytes_reserved").value();
    snap.total.arena_oversize = registry.counter("arena.oversize").value();
    snap.total.event_slots = registry.gauge("sim.event_slots").value();
    snap.total.flight_slots_a = registry.gauge("fleet.flight_slots").value();
    snap.total.arena_allocations =
        registry.counter("arena.allocations").value();
    snap.total.arena_freelist_hits =
        registry.counter("arena.freelist_hits").value();
    snap.total.probes_sent =
        static_cast<std::int64_t>(fleet.total_probes_sent());
    snap.windows = registry.gauge("shard.windows").value();
    for (std::uint32_t s = 0; s < 4; ++s) {
      snap.shard[s].chunks =
          registry.gauge(obs::MetricRegistry::scoped("shard", s, "arena_chunks"))
              .value();
      snap.shard[s].bytes =
          registry
              .gauge(obs::MetricRegistry::scoped("shard", s,
                                                 "arena_bytes_reserved"))
              .value();
      snap.shard[s].event_slots =
          registry.gauge(obs::MetricRegistry::scoped("shard", s, "event_slots"))
              .value();
    }
    return snap;
  };

  fleet.run_until(util::SimTime::zero() + util::Duration::seconds(2));
  const FleetSnapshot warm = sharded_snapshot();
  ASSERT_GT(warm.total.probes_sent, 0);
  ASSERT_GT(warm.total.arena_chunks, 0);
  ASSERT_GT(warm.windows, 0);

  fleet.run_until(util::SimTime::zero() + util::Duration::seconds(5));
  const FleetSnapshot steady = sharded_snapshot();

  EXPECT_GT(steady.total.probes_sent, warm.total.probes_sent)
      << "no probe traffic ran";
  EXPECT_GT(steady.windows, warm.windows) << "no windows ran in steady state";
  EXPECT_EQ(steady.total.arena_chunks, warm.total.arena_chunks)
      << "an arena grew new chunks after sharded warmup";
  EXPECT_EQ(steady.total.arena_bytes, warm.total.arena_bytes);
  EXPECT_EQ(steady.total.arena_oversize, warm.total.arena_oversize)
      << "a hot-path allocation bypassed the size classes";
  EXPECT_EQ(steady.total.event_slots, warm.total.event_slots)
      << "an event queue grew its slot table after sharded warmup";
  EXPECT_EQ(steady.total.flight_slots_a, warm.total.flight_slots_a)
      << "a backplane grew its in-flight frame pool after sharded warmup";
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(steady.shard[s].chunks, warm.shard[s].chunks) << "shard " << s;
    EXPECT_EQ(steady.shard[s].bytes, warm.shard[s].bytes) << "shard " << s;
    EXPECT_EQ(steady.shard[s].event_slots, warm.shard[s].event_slots)
        << "shard " << s;
  }
  // Per-shard pools are exercised, not bypassed.
  EXPECT_GT(steady.total.arena_allocations, warm.total.arena_allocations);
  EXPECT_GT(steady.total.arena_freelist_hits, warm.total.arena_freelist_hits);
}

TEST(ZeroAllocSteadyState, ArenaResetRetainsChunksAcrossRuns) {
  // The chaos runner's per-worker pattern: reset() between campaigns must
  // rewind without releasing memory, so run 2 reuses run 1's chunks.
  util::Arena arena;
  {
    sim::Simulator sim(&arena);
    net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
    core::DrsSystem system(network, core::DrsConfig{});
    system.start();
    sim.run_for(util::Duration::seconds(1));
  }
  const std::uint64_t chunks_after_first = arena.stats().chunks;
  const std::uint64_t bytes_after_first = arena.stats().bytes_reserved;
  ASSERT_GT(chunks_after_first, 0u);

  arena.reset();
  EXPECT_EQ(arena.stats().chunks, chunks_after_first);
  {
    sim::Simulator sim(&arena);
    net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
    core::DrsSystem system(network, core::DrsConfig{});
    system.start();
    sim.run_for(util::Duration::seconds(1));
  }
  EXPECT_EQ(arena.stats().chunks, chunks_after_first)
      << "an identical second run should fit the first run's chunks";
  EXPECT_EQ(arena.stats().bytes_reserved, bytes_after_first);
  EXPECT_EQ(arena.stats().resets, 1u);
}

}  // namespace
}  // namespace drs
