// Property tests over the trace stream of seeded random chaos campaigns.
//
// The headline property: across 200 random failure/restore schedules, every
// detour_install in the trace is justified by a preceding link-DOWN verdict
// for the same (node, peer), installs/teardowns strictly alternate, and a
// campaign that ends fully restored ends with every episode closed — no
// orphan detours, as judged by obs::audit_detours on the raw event stream.
//
// Alongside it: the failover-latency correction (latency is measured from
// the trace's first post-injection probe loss, not from schedule-injection
// time) pinned against the raw trace on a known schedule, and the tracer
// ring's capacity bound under eviction pressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "obs/timeline.hpp"

namespace drs {
namespace {

TEST(DetourProperty, NoOrphanDetoursAcross200SeededCampaigns) {
  chaos::CampaignConfig config;
  config.capture_trace = true;
  for (std::uint64_t campaign = 0; campaign < 200; ++campaign) {
    const chaos::CampaignResult result =
        chaos::run_campaign(0x0B5EC7, campaign, config);
    ASSERT_TRUE(result.violations.empty())
        << "campaign " << campaign << ": " << result.violations.size()
        << " invariant violations";
    // The audit is only sound over a complete stream.
    ASSERT_LT(result.trace.size(), config.trace_capacity)
        << "campaign " << campaign << " overflowed the trace ring";
    const std::vector<std::string> problems = obs::audit_detours(result.trace);
    ASSERT_TRUE(problems.empty())
        << "campaign " << campaign << ": " << problems.front() << " (and "
        << problems.size() - 1 << " more)";
  }
}

TEST(FailoverLatency, MeasuredFromFirstTracedProbeLoss) {
  chaos::CampaignConfig config;
  config.capture_trace = true;
  const chaos::CampaignResult result = chaos::run_campaign(7, 3, config);
  ASSERT_FALSE(result.timelines.empty()) << "schedule produced no disruption";
  ASSERT_EQ(result.timelines.size(), result.failover_latencies_ms.size());
  ASSERT_EQ(result.timelines.size(), result.detection_delays_ms.size());

  bool any_detected = false;
  for (std::size_t i = 0; i < result.timelines.size(); ++i) {
    const obs::FailoverTimeline& timeline = result.timelines[i];
    ASSERT_GE(timeline.recovered_at_ns, timeline.failure_at_ns);

    // The timeline's detection landmark IS the first post-injection probe
    // loss in the raw trace — recompute it independently.
    std::int64_t first_loss = -1;
    for (const obs::TraceEvent& event : result.trace) {
      if (event.kind == obs::TraceEventKind::kProbeLost &&
          event.at_ns >= timeline.failure_at_ns) {
        first_loss = event.at_ns;
        break;
      }
    }
    EXPECT_EQ(timeline.detected_at_ns, first_loss);

    // The reported latency starts at detection (injection when undetected):
    // latency + detection delay decomposes exactly into the injection-based
    // span, in integer nanoseconds.
    const std::int64_t start =
        timeline.detected() ? timeline.detected_at_ns : timeline.failure_at_ns;
    const util::Duration latency =
        util::SimTime::from_ns(timeline.recovered_at_ns) -
        util::SimTime::from_ns(start);
    const util::Duration delay = util::SimTime::from_ns(start) -
                                 util::SimTime::from_ns(timeline.failure_at_ns);
    EXPECT_EQ(result.failover_latencies_ms[i], latency.to_millis());
    EXPECT_EQ(result.detection_delays_ms[i], delay.to_millis());
    EXPECT_EQ(timeline.repair_latency_ns(), latency.ns());
    if (timeline.detected() &&
        timeline.detected_at_ns > timeline.failure_at_ns) {
      any_detected = true;
      // The correction is real: detection-based latency is strictly shorter.
      EXPECT_LT(latency.ns(),
                timeline.recovered_at_ns - timeline.failure_at_ns);
    }
  }
  EXPECT_TRUE(any_detected)
      << "pinned schedule must exercise the detection-based correction";
}

TEST(TraceRing, CampaignUnderCapacityPressureStaysBounded) {
  chaos::CampaignConfig config;
  config.capture_trace = true;
  config.trace_capacity = 64;
  const chaos::CampaignResult result = chaos::run_campaign(1, 0, config);
  // A campaign emits far more than 64 events, so the ring is exactly full
  // and the survivors are the newest events in chronological order.
  EXPECT_EQ(result.trace.size(), config.trace_capacity);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].at_ns, result.trace[i].at_ns);
  }
  // Same campaign with a roomy ring: its trace ends with the same events
  // the small ring retained (oldest-eviction, not arbitrary dropping).
  chaos::CampaignConfig roomy = config;
  roomy.trace_capacity = std::size_t{1} << 15;
  const chaos::CampaignResult full = chaos::run_campaign(1, 0, roomy);
  ASSERT_GT(full.trace.size(), result.trace.size());
  const std::size_t offset = full.trace.size() - result.trace.size();
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].at_ns, full.trace[offset + i].at_ns);
    EXPECT_EQ(result.trace[i].kind, full.trace[offset + i].kind);
  }
}

}  // namespace
}  // namespace drs
