#include "util/time.hpp"

#include <gtest/gtest.h>

namespace drs::util {
namespace {

using namespace drs::util::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::micros(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanos(1).ns(), 1);
  EXPECT_EQ(Duration::seconds(3), Duration::millis(3000));
}

TEST(Duration, LiteralsMatchFactories) {
  EXPECT_EQ(5_s, Duration::seconds(5));
  EXPECT_EQ(250_ms, Duration::millis(250));
  EXPECT_EQ(7_us, Duration::micros(7));
  EXPECT_EQ(42_ns, Duration::nanos(42));
}

TEST(Duration, ArithmeticIsExact) {
  EXPECT_EQ((1_s + 500_ms).ns(), 1'500'000'000);
  EXPECT_EQ((1_s - 1_ns).ns(), 999'999'999);
  EXPECT_EQ((10_ms * 3).ns(), 30'000'000);
  EXPECT_EQ((10_ms / 4).ns(), 2'500'000);
  EXPECT_EQ(-(3_ms), Duration::millis(-3));
}

TEST(Duration, FromSecondsRoundsToNearestTick) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(0.49e-9).ns(), 0);
  EXPECT_EQ(Duration::from_seconds(-2.5e-9).ns(), -3);  // away from zero
}

TEST(Duration, ConversionsRoundTrip) {
  const Duration d = 1234_us;
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.234e-3);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1.234);
  EXPECT_DOUBLE_EQ(d.to_micros(), 1234.0);
}

TEST(Duration, ComparisonIsTotalOrder) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_EQ(Duration::zero(), 0_ns);
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(SimTime, AffineArithmetic) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + 5_s;
  EXPECT_EQ(t1 - t0, 5_s);
  EXPECT_EQ(t1 - 2_s, t0 + 3_s);
  SimTime t = t0;
  t += 100_ms;
  EXPECT_EQ(t.ns(), 100'000'000);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::zero(), SimTime::zero() + 1_ns);
  EXPECT_LT(SimTime::zero() + 10_s, SimTime::max());
}

TEST(TimeFormatting, AdaptiveUnits) {
  EXPECT_EQ(to_string(Duration::nanos(12)), "12 ns");
  EXPECT_EQ(to_string(Duration::micros(3)), "3.000 us");
  EXPECT_EQ(to_string(Duration::millis(1500)), "1.500 s");
  EXPECT_EQ(to_string(250_ms), "250.000 ms");
}

}  // namespace
}  // namespace drs::util
