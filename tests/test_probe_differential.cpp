// Differential proof that the batched probe sweep is observably identical to
// the legacy per-peer scheduler it replaced.
//
// Every scenario here runs twice — once under ProbeScheduler::kLegacyPerPeer
// (the original implementation, kept in-tree as the oracle) and once under
// ProbeScheduler::kBatchedSweep — and asserts byte-identical protocol
// traces (every kind including the ping_sent flood, so send instants and
// ordering match to the nanosecond), identical failover latencies, and
// identical metric snapshots. The corpus covers 20 seeded scenarios across
// three shapes: healthy clusters of varying size, single-NIC failures with
// recovery, and full scripted chaos campaigns.
//
// Two deliberate exclusions, both sim-layer observability rather than
// protocol behavior:
//   - queue_high_water trace events report the *event-queue population*,
//     which the batched scheduler intentionally shrinks (that is the point
//     of the tentpole); they are filtered from the comparison.
//   - "sim."-prefixed metrics (event slots, scheduled/executed counts)
//     measure the same population and are stripped from snapshots.
// Everything the protocol can observe — probes, verdicts, detours, leases,
// arena traffic — must match byte-for-byte.
//
// Known residual (documented in docs/PERFORMANCE.md): the sweep replays
// legacy's queue positions through claimed ranks, which assumes probe
// deadlines arrive in send order. Adaptive timeouts can violate that (a
// shrinking timeout re-arms the shared scan backward), and a foreign event
// landing on that exact nanosecond can then pop on the other side of an
// expiry than it would under legacy. Fixed-timeout configs (this corpus,
// and the shipped defaults) cannot produce that shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace drs {
namespace {

using core::ProbeScheduler;

// Every trace kind except kQueueHighWater (see the file comment).
std::vector<obs::TraceEvent> protocol_events(
    const std::vector<obs::TraceEvent>& events) {
  return obs::filter_kinds(
      events,
      {obs::TraceEventKind::kPingSent, obs::TraceEventKind::kPingLost,
       obs::TraceEventKind::kProbeLost, obs::TraceEventKind::kLinkChange,
       obs::TraceEventKind::kDetourInstall, obs::TraceEventKind::kDetourSwitch,
       obs::TraceEventKind::kDetourTeardown,
       obs::TraceEventKind::kDiscoveryStart,
       obs::TraceEventKind::kRelaySelected, obs::TraceEventKind::kLeaseGranted,
       obs::TraceEventKind::kLeaseExpired, obs::TraceEventKind::kTcpRetransmit,
       obs::TraceEventKind::kTcpRto});
}

// Drops the flat "sim.<name>":<int> entries from a canonical metrics JSON
// (names are keys in sorted flat maps, values plain integers, so each entry
// ends at the next ',' or '}').
std::string without_sim_metrics(std::string json) {
  std::size_t pos;
  while ((pos = json.find("\"sim.")) != std::string::npos) {
    const std::size_t colon = json.find(':', pos);
    if (colon == std::string::npos) break;
    const std::size_t end = json.find_first_of(",}", colon);
    if (end == std::string::npos) break;
    if (json[end] == ',') {
      json.erase(pos, end - pos + 1);
    } else {
      std::size_t begin = pos;
      if (begin > 0 && json[begin - 1] == ',') --begin;
      json.erase(begin, end - begin);
    }
  }
  return json;
}

/// Everything one scenario run exposes to comparison.
struct Observed {
  std::string trace_json;    // canonical JSON of protocol_events
  std::string metrics_json;  // registry snapshot minus sim.* entries
  std::uint64_t probes_sent = 0;
  std::uint64_t control_messages = 0;
  /// Detection latencies (ns since injection) of every post-injection DOWN
  /// verdict, in link-history order — empty for healthy runs.
  std::vector<std::int64_t> failover_ns;
  bool pristine = false;
};

void expect_identical(const Observed& legacy, const Observed& batched,
                      const std::string& label) {
  EXPECT_EQ(legacy.trace_json, batched.trace_json) << label;
  EXPECT_EQ(legacy.metrics_json, batched.metrics_json) << label;
  EXPECT_EQ(legacy.probes_sent, batched.probes_sent) << label;
  EXPECT_EQ(legacy.control_messages, batched.control_messages) << label;
  EXPECT_EQ(legacy.failover_ns, batched.failover_ns) << label;
  EXPECT_EQ(legacy.pristine, batched.pristine) << label;
}

/// A hand-built cluster scenario: warm up, optionally fail one NIC and heal
/// it, converge. `fail_node < 0` keeps the cluster healthy throughout.
Observed run_cluster(ProbeScheduler scheduler, std::uint16_t n,
                     int fail_node) {
  sim::Simulator sim;
  obs::Tracer tracer(std::size_t{1} << 18);
  sim.set_tracer(&tracer);
  net::ClusterNetwork network(sim, {.node_count = n, .backplane = {}});
  core::DrsConfig config = chaos::fast_campaign_drs_config();
  config.probe_scheduler = scheduler;
  core::DrsSystem system(network, config);
  system.start();
  sim.run_for(util::Duration::seconds(1));
  util::SimTime injected = util::SimTime::max();
  if (fail_node >= 0) {
    const net::ComponentIndex nic = net::ClusterNetwork::nic_component(
        static_cast<net::NodeId>(fail_node), 0);
    injected = sim.now();
    network.set_component_failed(nic, true);
    sim.run_for(util::Duration::seconds(2));
    network.set_component_failed(nic, false);
  }
  sim.run_for(util::Duration::seconds(2));

  Observed observed;
  observed.probes_sent = system.total_probes_sent();
  observed.control_messages = system.total_control_messages();
  observed.pristine = system.all_pristine();
  for (net::NodeId i = 0; i < n; ++i) {
    for (const core::LinkTransition& t : system.daemon(i).links().history()) {
      if (t.to == core::LinkState::kDown && t.at >= injected) {
        observed.failover_ns.push_back((t.at - injected).ns());
      }
    }
  }
  obs::MetricRegistry registry;
  core::snapshot_metrics(system, registry);
  observed.metrics_json = without_sim_metrics(registry.to_json());
  system.stop();
  EXPECT_EQ(tracer.evicted(), 0u) << "trace ring too small for n=" << n;
  observed.trace_json = obs::to_canonical_json(protocol_events(tracer.events()));
  return observed;
}

/// A scripted chaos campaign under the given scheduler.
Observed run_chaos(ProbeScheduler scheduler, std::uint64_t seed,
                   std::uint64_t campaign) {
  chaos::CampaignConfig config;
  config.capture_trace = true;
  config.drs.probe_scheduler = scheduler;
  const chaos::CampaignResult result =
      chaos::run_campaign(seed, campaign, config);
  Observed observed;
  observed.trace_json = obs::to_canonical_json(protocol_events(result.trace));
  observed.probes_sent = result.actions_applied;  // schedule echo
  observed.control_messages = result.checks;
  observed.pristine = result.violations.empty();
  for (const double ms : result.failover_latencies_ms) {
    observed.failover_ns.push_back(static_cast<std::int64_t>(ms * 1e6));
  }
  for (const double ms : result.detection_delays_ms) {
    observed.failover_ns.push_back(static_cast<std::int64_t>(ms * 1e6));
  }
  return observed;
}

TEST(ProbeDifferential, HealthyClustersAreByteIdentical) {
  for (const std::uint16_t n : {std::uint16_t{2}, std::uint16_t{3},
                                std::uint16_t{4}, std::uint16_t{5},
                                std::uint16_t{8}, std::uint16_t{12}}) {
    const Observed legacy =
        run_cluster(ProbeScheduler::kLegacyPerPeer, n, /*fail_node=*/-1);
    const Observed batched =
        run_cluster(ProbeScheduler::kBatchedSweep, n, /*fail_node=*/-1);
    expect_identical(legacy, batched, "healthy n=" + std::to_string(n));
    EXPECT_GT(batched.probes_sent, 0u);
    EXPECT_TRUE(batched.pristine) << n;
    EXPECT_TRUE(batched.failover_ns.empty()) << n;
  }
}

TEST(ProbeDifferential, NicFailuresAreByteIdentical) {
  for (const std::uint16_t n : {std::uint16_t{3}, std::uint16_t{4},
                                std::uint16_t{5}, std::uint16_t{8},
                                std::uint16_t{9}, std::uint16_t{10}}) {
    const Observed legacy =
        run_cluster(ProbeScheduler::kLegacyPerPeer, n, /*fail_node=*/1);
    const Observed batched =
        run_cluster(ProbeScheduler::kBatchedSweep, n, /*fail_node=*/1);
    expect_identical(legacy, batched, "nic-failure n=" + std::to_string(n));
    // The fault must actually bite: every surviving node detects the DOWN.
    EXPECT_FALSE(batched.failover_ns.empty()) << n;
    EXPECT_TRUE(batched.pristine) << "n=" << n << " did not heal";
  }
}

TEST(ProbeDifferential, ChaosCampaignsAreByteIdentical) {
  for (std::uint64_t campaign = 0; campaign < 8; ++campaign) {
    const Observed legacy =
        run_chaos(ProbeScheduler::kLegacyPerPeer, 0xC4A05ULL, campaign);
    const Observed batched =
        run_chaos(ProbeScheduler::kBatchedSweep, 0xC4A05ULL, campaign);
    expect_identical(legacy, batched,
                     "chaos campaign " + std::to_string(campaign));
    EXPECT_TRUE(batched.pristine) << campaign;
  }
}

}  // namespace
}  // namespace drs
