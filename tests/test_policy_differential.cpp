// Differential pin of the comparison harness across the policy-API redesign.
//
// The golden file tests/golden/comparison_results.txt was generated from the
// pre-redesign ProtocolKind-switch harness (DRS + RIP over six fixed failure
// scenarios at the comparison test's n=8 configuration). The redesigned
// registry-backed harness must reproduce those results byte-identically —
// both through the new string-keyed policy path and through the deprecated
// ProtocolKind shim.
//
// To regenerate after an intentional behaviour change:
//   DRS_UPDATE_GOLDEN=1 ./build/tests/test_policy_differential
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "reactive/comparison.hpp"

namespace drs::reactive {
namespace {

using namespace drs::util::literals;

std::string golden_path(const std::string& name) {
  return std::string(DRS_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("DRS_UPDATE_GOLDEN");
      update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with DRS_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "comparison results drifted from " << path
      << " — the redesigned harness must match the pre-redesign output "
         "byte-for-byte (regenerate with DRS_UPDATE_GOLDEN=1 only if the "
         "behaviour change is intentional)";
}

struct NamedScenario {
  const char* name;
  std::vector<net::ComponentIndex> failed;
};

// Mirrors the failure menagerie exercised by test_reactive_comparison and
// bench_proactive_vs_reactive, at the comparison test's n=8 geometry.
std::vector<NamedScenario> corpus() {
  constexpr std::uint16_t n = 8;
  return {
      {"none", {}},
      {"peer_primary_nic", {net::ClusterNetwork::nic_component(1, 0)}},
      {"own_primary_nic", {net::ClusterNetwork::nic_component(0, 0)}},
      {"backplane_a", {static_cast<net::ComponentIndex>(2 * n + 0)}},
      {"cross_split",
       {net::ClusterNetwork::nic_component(0, 1),
        net::ClusterNetwork::nic_component(1, 0)}},
      {"three_nics",
       {net::ClusterNetwork::nic_component(1, 0),
        net::ClusterNetwork::nic_component(3, 0),
        net::ClusterNetwork::nic_component(5, 1)}},
  };
}

void serialize(std::ostringstream& out, const char* policy,
               const char* scenario, const ScenarioResult& r) {
  out << "policy=" << policy << " scenario=" << scenario
      << " healthy_before=" << (r.healthy_before ? 1 : 0)
      << " recovered=" << (r.recovered ? 1 : 0) << " app_outage_ns=";
  if (r.app_outage == util::Duration::max()) {
    out << "never";
  } else {
    out << r.app_outage.ns();
  }
  out << " last_loss_after_ns=" << r.last_loss_after.ns()
      << " probes_lost=" << r.probes_lost << " probes_total=" << r.probes_total
      << " protocol_messages=" << r.protocol_messages << "\n";
}

// ---- the deprecated ProtocolKind shim, exactly as pre-redesign callers
// wrote it (flat per-protocol config members, enum selection) ----
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

ScenarioConfig base_config(ProtocolKind kind) {
  ScenarioConfig config;
  config.node_count = 8;
  config.protocol = kind;
  config.drs.probe_interval = 50_ms;
  config.drs.probe_timeout = 20_ms;
  config.drs.failures_to_down = 2;
  config.drs.discover_timeout = 25_ms;
  config.rip.advertise_interval = 1_s;
  config.rip.route_timeout = 6_s;
  config.warmup = 3_s;
  config.measure = 12_s;
  return config;
}

std::string run_corpus_via_enum() {
  std::ostringstream out;
  for (const ProtocolKind kind : {ProtocolKind::kDrs, ProtocolKind::kRip}) {
    for (const NamedScenario& scenario : corpus()) {
      const ScenarioResult result =
          run_failure_scenario(base_config(kind), scenario.failed);
      serialize(out, to_string(kind), scenario.name, result);
    }
  }
  return out.str();
}

TEST(PolicyDifferentialShim, EnumNamesStillResolve) {
  EXPECT_STREQ(to_string(ProtocolKind::kDrs), "drs");
  EXPECT_STREQ(to_string(ProtocolKind::kRip), "rip");
  EXPECT_STREQ(to_string(ProtocolKind::kOspf), "ospf");
  EXPECT_STREQ(to_string(ProtocolKind::kStatic), "static");
}

#pragma GCC diagnostic pop

// ---- the redesigned registry path: same knobs via policy name + params ----

ScenarioConfig registry_config(const char* policy) {
  ScenarioConfig config;
  config.node_count = 8;
  config.policy = policy;
  config.params.drs.probe_interval = 50_ms;
  config.params.drs.probe_timeout = 20_ms;
  config.params.drs.failures_to_down = 2;
  config.params.drs.discover_timeout = 25_ms;
  config.params.rip.advertise_interval = 1_s;
  config.params.rip.route_timeout = 6_s;
  config.warmup = 3_s;
  config.measure = 12_s;
  return config;
}

std::string run_corpus_via_registry() {
  std::ostringstream out;
  for (const char* policy : {"drs", "rip"}) {
    for (const NamedScenario& scenario : corpus()) {
      const ScenarioResult result =
          run_failure_scenario(registry_config(policy), scenario.failed);
      serialize(out, policy, scenario.name, result);
    }
  }
  return out.str();
}

TEST(PolicyDifferential, RegistryPathMatchesPreRedesignGolden) {
  check_golden("comparison_results.txt", run_corpus_via_registry());
}

TEST(PolicyDifferential, EnumShimMatchesPreRedesignGolden) {
  check_golden("comparison_results.txt", run_corpus_via_enum());
}

TEST(PolicyDifferential, BothPathsAgreeExactly) {
  EXPECT_EQ(run_corpus_via_registry(), run_corpus_via_enum());
}

}  // namespace
}  // namespace drs::reactive
