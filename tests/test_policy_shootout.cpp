// The policy shootout at the CI smoke grid: every registered policy over a
// reduced chaos corpus, ranked into one deterministic table and pinned
// byte-for-byte.
//
// To regenerate after an intentional behaviour change:
//   DRS_UPDATE_GOLDEN=1 ./build/tests/test_policy_shootout
#include "policy/shootout.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "policy/registry.hpp"

namespace drs::policy {
namespace {

using namespace drs::util::literals;

std::string golden_path(const std::string& name) {
  return std::string(DRS_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("DRS_UPDATE_GOLDEN");
      update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with DRS_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "shootout ranking drifted from " << path
      << " (regenerate with DRS_UPDATE_GOLDEN=1 only if the behaviour "
         "change is intentional)";
}

/// The CI smoke grid: small corpus, scaled-down protocol timers so every
/// policy gets a fair shot inside the measurement window.
ShootoutConfig smoke_config() {
  ShootoutConfig config;
  config.node_count = 8;
  config.seed = 1;
  config.campaigns = 2;
  config.events_per_campaign = 8;
  config.max_patterns = 4;
  config.params.drs.probe_interval = 50_ms;
  config.params.drs.probe_timeout = 20_ms;
  config.params.drs.failures_to_down = 2;
  config.params.drs.discover_timeout = 25_ms;
  config.params.rip.advertise_interval = 1_s;
  config.params.rip.route_timeout = 6_s;
  config.params.ospf.hello_interval = 1_s;
  config.params.ospf.dead_interval = 4_s;
  config.params.ospf.lsa_refresh = 10_s;
  config.warmup = 2_s;
  config.measure = 8_s;
  return config;
}

TEST(PolicyShootout, CorpusIsNonTrivialAndDeduplicated) {
  const ShootoutReport report = run_shootout(
      [] {
        ShootoutConfig config = smoke_config();
        config.policy_filter = {"static"};  // corpus only, cheapest policy
        return config;
      }());
  ASSERT_GE(report.corpus.size(), 2u);
  for (std::size_t i = 0; i < report.corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < report.corpus.size(); ++j) {
      EXPECT_NE(report.corpus[i], report.corpus[j]) << "duplicate pattern";
    }
  }
}

TEST(PolicyShootout, RankedTableMatchesGolden) {
  const ShootoutReport report = run_shootout(smoke_config());
  ASSERT_EQ(report.rows.size(), policy_names().size());
  for (const ShootoutRow& row : report.rows) {
    EXPECT_EQ(row.patterns, report.corpus.size()) << row.policy;
  }
  // Proactive/precomputed policies must outrank plain static routing.
  EXPECT_NE(report.rows.front().policy, "static");
  check_golden("policy_shootout.txt", report.table());
}

TEST(PolicyShootout, JsonMirrorsTheRanking) {
  ShootoutConfig config = smoke_config();
  config.policy_filter = {"drs", "static_resilient"};
  config.max_patterns = 2;
  const ShootoutReport report = run_shootout(config);
  ASSERT_EQ(report.rows.size(), 2u);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"ranking\""), std::string::npos);
  EXPECT_NE(json.find(report.rows.front().policy), std::string::npos);
  // Ranking order in JSON matches the table's best-first order.
  EXPECT_LT(json.find(report.rows[0].policy),
            json.find(report.rows[1].policy));
}

}  // namespace
}  // namespace drs::policy
