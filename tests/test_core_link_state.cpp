#include "core/link_state.hpp"

#include <gtest/gtest.h>

namespace drs::core {
namespace {

using util::SimTime;

SimTime at(std::int64_t ms) {
  return SimTime::zero() + util::Duration::millis(ms);
}

TEST(LinkStateTable, StartsOptimisticallyUp) {
  LinkStateTable table(0, 4, 2, 1);
  for (net::NodeId peer = 0; peer < 4; ++peer) {
    for (net::NetworkId k = 0; k < 2; ++k) {
      EXPECT_EQ(table.state(peer, k), LinkState::kUp);
      EXPECT_TRUE(table.usable(peer, k));
    }
  }
  EXPECT_EQ(table.down_count(), 0u);
}

TEST(LinkStateTable, SingleLossIsOnlySuspect) {
  LinkStateTable table(0, 4, 2, 1);
  EXPECT_FALSE(table.record_probe(1, 0, false, at(0)));
  EXPECT_EQ(table.state(1, 0), LinkState::kSuspect);
  EXPECT_TRUE(table.usable(1, 0));  // no rerouting on one lost echo
}

TEST(LinkStateTable, ConsecutiveLossesDeclareDown) {
  LinkStateTable table(0, 4, 3, 1);
  EXPECT_FALSE(table.record_probe(1, 0, false, at(0)));
  EXPECT_FALSE(table.record_probe(1, 0, false, at(1)));
  EXPECT_TRUE(table.record_probe(1, 0, false, at(2)));  // verdict change
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  EXPECT_FALSE(table.usable(1, 0));
  EXPECT_EQ(table.down_count(), 1u);
}

TEST(LinkStateTable, SuccessClearsSuspect) {
  LinkStateTable table(0, 4, 3, 1);
  table.record_probe(1, 0, false, at(0));
  table.record_probe(1, 0, false, at(1));
  EXPECT_FALSE(table.record_probe(1, 0, true, at(2)));  // no verdict change
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
  // Failure counter reset: two more losses are again only SUSPECT.
  table.record_probe(1, 0, false, at(3));
  table.record_probe(1, 0, false, at(4));
  EXPECT_EQ(table.state(1, 0), LinkState::kSuspect);
}

TEST(LinkStateTable, RecoveryHysteresis) {
  LinkStateTable table(0, 4, 1, 3);
  EXPECT_TRUE(table.record_probe(1, 0, false, at(0)));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  EXPECT_FALSE(table.record_probe(1, 0, true, at(1)));
  EXPECT_FALSE(table.record_probe(1, 0, true, at(2)));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);  // still below threshold
  EXPECT_TRUE(table.record_probe(1, 0, true, at(3)));
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
}

TEST(LinkStateTable, FlappingLinkBouncesThroughThresholds) {
  LinkStateTable table(0, 4, 2, 2);
  // loss, loss -> down
  table.record_probe(1, 0, false, at(0));
  table.record_probe(1, 0, false, at(1));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  // success, loss: success streak broken before reaching 2
  table.record_probe(1, 0, true, at(2));
  table.record_probe(1, 0, false, at(3));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  // two clean successes recover
  table.record_probe(1, 0, true, at(4));
  table.record_probe(1, 0, true, at(5));
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
}

TEST(LinkStateTable, LinksAreIndependent) {
  LinkStateTable table(0, 4, 1, 1);
  table.record_probe(1, 0, false, at(0));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  EXPECT_EQ(table.state(1, 1), LinkState::kUp);
  EXPECT_EQ(table.state(2, 0), LinkState::kUp);
}

TEST(LinkStateTable, HistoryRecordsTransitions) {
  LinkStateTable table(0, 4, 2, 1);
  table.record_probe(2, 1, false, at(10));
  table.record_probe(2, 1, false, at(20));
  table.record_probe(2, 1, true, at(30));
  const auto& history = table.history();
  ASSERT_EQ(history.size(), 3u);  // up->suspect, suspect->down, down->up
  EXPECT_EQ(history[0].from, LinkState::kUp);
  EXPECT_EQ(history[0].to, LinkState::kSuspect);
  EXPECT_EQ(history[1].to, LinkState::kDown);
  EXPECT_EQ(history[1].at, at(20));
  EXPECT_EQ(history[2].to, LinkState::kUp);
  EXPECT_EQ(history[2].peer, 2);
  EXPECT_EQ(history[2].network, 1);
}

TEST(LinkStateTable, ZeroThresholdsClampToOne) {
  LinkStateTable table(0, 4, 0, 0);
  EXPECT_TRUE(table.record_probe(1, 0, false, at(0)));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);
  EXPECT_TRUE(table.record_probe(1, 0, true, at(1)));
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
}

TEST(LinkStateNames, Strings) {
  EXPECT_STREQ(to_string(LinkState::kUp), "up");
  EXPECT_STREQ(to_string(LinkState::kSuspect), "suspect");
  EXPECT_STREQ(to_string(LinkState::kDown), "down");
}

}  // namespace
}  // namespace drs::core
