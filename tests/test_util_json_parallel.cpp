// util::JsonWriter (canonical machine-readable reports) and
// util::run_indexed_jobs (the deterministic fan-out shared by the Monte-Carlo
// estimator and the chaos runner).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/parallel.hpp"

namespace drs::util {
namespace {

// --- JsonWriter --------------------------------------------------------------

TEST(JsonWriter, NestedContainersAndSeparators) {
  JsonWriter json;
  json.begin_object()
      .field("name", "drs")
      .field("n", std::uint64_t{90})
      .field("ok", true);
  json.key("series").begin_array();
  json.value(1.5).value(std::int64_t{-2}).value("x");
  json.end_array();
  json.key("empty").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"drs\",\"n\":90,\"ok\":true,"
            "\"series\":[1.5,-2,\"x\"],\"empty\":{}}");
}

TEST(JsonWriter, EmptyArrayAndTopLevelScalar) {
  JsonWriter array;
  array.begin_array().end_array();
  EXPECT_EQ(array.str(), "[]");
  JsonWriter scalar;
  scalar.value(false);
  EXPECT_EQ(scalar.str(), "false");
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("line\nfeed\r"), "line\\nfeed\\r");
  EXPECT_EQ(JsonWriter::escape(std::string("nul\x01") + '\x1f'),
            "nul\\u0001\\u001f");
}

TEST(JsonWriter, NumberFormattingIsDeterministic) {
  JsonWriter json;
  json.begin_array()
      .value(0.125)
      .value(-0.0)
      .value(1e-9)
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  // Non-finite doubles have no JSON representation; they degrade to null so
  // reports stay parseable.
  EXPECT_EQ(json.str(), "[0.125,-0,1e-09,null,null]");
}

// --- run_indexed_jobs --------------------------------------------------------

TEST(RunIndexedJobs, ResultsIndexedByJob) {
  const auto squares =
      run_indexed_jobs(10, 4, [](std::uint64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(RunIndexedJobs, ThreadCountInvariant) {
  auto job = [](std::uint64_t i) {
    // Cheap but non-trivial pure function of the index.
    std::uint64_t h = i * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return h;
  };
  const auto reference = run_indexed_jobs(257, 1, job);
  for (unsigned threads : {2u, 3u, 8u}) {
    EXPECT_EQ(run_indexed_jobs(257, threads, job), reference)
        << threads << " threads";
  }
}

TEST(RunIndexedJobs, EdgeCounts) {
  EXPECT_TRUE(run_indexed_jobs(0, 8, [](std::uint64_t i) { return i; }).empty());
  const auto one = run_indexed_jobs(1, 8, [](std::uint64_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
  // More threads than jobs must not deadlock or duplicate work.
  const auto few = run_indexed_jobs(3, 16, [](std::uint64_t i) { return i; });
  EXPECT_EQ(std::accumulate(few.begin(), few.end(), std::uint64_t{0}), 3u);
}

TEST(ResolveThreads, NeverExceedsJobsAndNeverZero) {
  EXPECT_EQ(resolve_threads(8, 3), 3u);
  EXPECT_EQ(resolve_threads(2, 100), 2u);
  EXPECT_GE(resolve_threads(0, 100), 1u);
  EXPECT_EQ(resolve_threads(4, 0), 1u);
}

}  // namespace
}  // namespace drs::util
