#include "reactive/comparison.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace drs::reactive {
namespace {

using namespace drs::util::literals;

ScenarioConfig base_config(const std::string& policy) {
  ScenarioConfig config;
  config.node_count = 8;
  config.policy = policy;
  config.params.drs.probe_interval = 50_ms;
  config.params.drs.probe_timeout = 20_ms;
  config.params.drs.failures_to_down = 2;
  config.params.drs.discover_timeout = 25_ms;
  // Scaled-down classic RIP (30 s / 180 s divided by 30).
  config.params.rip.advertise_interval = 1_s;
  config.params.rip.route_timeout = 6_s;
  config.warmup = 3_s;
  config.measure = 12_s;
  return config;
}

std::vector<net::ComponentIndex> peer_primary_nic_failure() {
  // Observer dst (node 1) loses its primary NIC.
  return {net::ClusterNetwork::nic_component(1, 0)};
}

TEST(Comparison, DrsRecoversWithinProbingBudget) {
  const ScenarioResult result =
      run_failure_scenario(base_config("drs"), peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  // Detection (2 x 50 ms) + repair + one probe interval of slack.
  EXPECT_LT(result.app_outage, 500_ms);
  EXPECT_GT(result.protocol_messages, 0u);
}

TEST(Comparison, RipRecoversOnlyAfterTimeout) {
  const ScenarioResult result =
      run_failure_scenario(base_config("rip"), peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  EXPECT_GT(result.app_outage, 3_s);  // at least ~ route_timeout/2
}

TEST(Comparison, StaticNeverRecovers) {
  const ScenarioResult result =
      run_failure_scenario(base_config("static"), peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_FALSE(result.recovered);
  EXPECT_EQ(result.app_outage, util::Duration::max());
  EXPECT_EQ(result.protocol_messages, 0u);
}

TEST(Comparison, StaticResilientRecoversWithoutMessages) {
  // The precomputed-failover baseline: the failure notification re-resolves
  // from the backup sequence, with zero protocol traffic ever sent.
  const ScenarioResult result = run_failure_scenario(
      base_config("static_resilient"), peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  EXPECT_EQ(result.protocol_messages, 0u);
  EXPECT_LT(result.app_outage, 100_ms);  // reacts at notification time
}

TEST(Comparison, AlternatePathRecoversAfterNotifyDelay) {
  const ScenarioResult result = run_failure_scenario(
      base_config("alternate_path"), peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  // One notification fan-out to every node, nothing periodic.
  EXPECT_EQ(result.protocol_messages, 8u);
  EXPECT_LT(result.app_outage, 200_ms);
}

TEST(Comparison, DrsBeatsRipByAnOrderOfMagnitude) {
  // The paper's central claim, quantified on identical failures.
  const ScenarioResult drs =
      run_failure_scenario(base_config("drs"), peer_primary_nic_failure());
  const ScenarioResult rip =
      run_failure_scenario(base_config("rip"), peer_primary_nic_failure());
  ASSERT_TRUE(drs.recovered);
  ASSERT_TRUE(rip.recovered);
  EXPECT_LT(drs.app_outage * 10, rip.app_outage);
}

TEST(Comparison, DrsSurvivesBackplaneFailure) {
  sim::Simulator sim;
  net::ClusterNetwork scratch(sim, {.node_count = 8, .backplane = {}});
  const auto backplane = scratch.backplane_component(0);
  const ScenarioResult result =
      run_failure_scenario(base_config("drs"), {backplane});
  EXPECT_TRUE(result.recovered);
  EXPECT_LT(result.app_outage, 500_ms);
}

TEST(Comparison, DrsHandlesCrossSplitWithRelay) {
  const std::vector<net::ComponentIndex> cross = {
      net::ClusterNetwork::nic_component(0, 1),
      net::ClusterNetwork::nic_component(1, 0)};
  const ScenarioResult result =
      run_failure_scenario(base_config("drs"), cross);
  EXPECT_TRUE(result.recovered);
  EXPECT_LT(result.app_outage, 1_s);  // includes relay discovery
}

TEST(Comparison, StaticCrossSplitIsFatalButRipSurvivesEventually) {
  const std::vector<net::ComponentIndex> cross = {
      net::ClusterNetwork::nic_component(0, 1),
      net::ClusterNetwork::nic_component(1, 0)};
  const ScenarioResult stat =
      run_failure_scenario(base_config("static"), cross);
  EXPECT_FALSE(stat.recovered);

  ScenarioConfig rip_config = base_config("rip");
  rip_config.measure = 20_s;
  const ScenarioResult rip = run_failure_scenario(rip_config, cross);
  EXPECT_TRUE(rip.recovered);  // multi-hop distance vector finds the relay
}

TEST(Comparison, NoFailureMeansNoLoss) {
  const ScenarioResult result = run_failure_scenario(base_config("drs"), {});
  EXPECT_TRUE(result.recovered);  // first post-"injection" probe succeeds
  EXPECT_EQ(result.probes_lost, 0u);
  EXPECT_LT(result.app_outage, 100_ms);
}

TEST(Comparison, UnknownPolicyNameListsRegisteredNames) {
  try {
    (void)run_failure_scenario(base_config("ripv9"), {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("ripv9"), std::string::npos);
    EXPECT_NE(what.find("drs"), std::string::npos) << what;
    EXPECT_NE(what.find("static_resilient"), std::string::npos) << what;
  }
}

TEST(Comparison, DetectionTrackingReportsTableChange) {
  ScenarioConfig config = base_config("drs");
  config.track_detection = true;
  const ScenarioResult result =
      run_failure_scenario(config, peer_primary_nic_failure());
  ASSERT_TRUE(result.detection.has_value());
  EXPECT_GT(*result.detection, util::Duration::zero());
  // DRS failover (2 x 50 ms probes) should show up well within a second.
  EXPECT_LT(*result.detection, 1_s);
  EXPECT_GT(result.path_hops_before, 0u);
  EXPECT_GT(result.path_hops_after, 0u);
}

}  // namespace
}  // namespace drs::reactive
