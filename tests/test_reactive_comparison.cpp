#include "reactive/comparison.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace drs::reactive {
namespace {

using namespace drs::util::literals;

ScenarioConfig base_config(ProtocolKind kind) {
  ScenarioConfig config;
  config.node_count = 8;
  config.protocol = kind;
  config.drs.probe_interval = 50_ms;
  config.drs.probe_timeout = 20_ms;
  config.drs.failures_to_down = 2;
  config.drs.discover_timeout = 25_ms;
  // Scaled-down classic RIP (30 s / 180 s divided by 30).
  config.rip.advertise_interval = 1_s;
  config.rip.route_timeout = 6_s;
  config.warmup = 3_s;
  config.measure = 12_s;
  return config;
}

std::vector<net::ComponentIndex> peer_primary_nic_failure() {
  // Observer dst (node 1) loses its primary NIC.
  return {net::ClusterNetwork::nic_component(1, 0)};
}

TEST(Comparison, DrsRecoversWithinProbingBudget) {
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kDrs),
                           peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  // Detection (2 x 50 ms) + repair + one probe interval of slack.
  EXPECT_LT(result.app_outage, 500_ms);
  EXPECT_GT(result.protocol_messages, 0u);
}

TEST(Comparison, RipRecoversOnlyAfterTimeout) {
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kRip),
                           peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_TRUE(result.recovered);
  EXPECT_GT(result.app_outage, 3_s);  // at least ~ route_timeout/2
}

TEST(Comparison, StaticNeverRecovers) {
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kStatic),
                           peer_primary_nic_failure());
  EXPECT_TRUE(result.healthy_before);
  EXPECT_FALSE(result.recovered);
  EXPECT_EQ(result.app_outage, util::Duration::max());
  EXPECT_EQ(result.protocol_messages, 0u);
}

TEST(Comparison, DrsBeatsRipByAnOrderOfMagnitude) {
  // The paper's central claim, quantified on identical failures.
  const ScenarioResult drs = run_failure_scenario(
      base_config(ProtocolKind::kDrs), peer_primary_nic_failure());
  const ScenarioResult rip = run_failure_scenario(
      base_config(ProtocolKind::kRip), peer_primary_nic_failure());
  ASSERT_TRUE(drs.recovered);
  ASSERT_TRUE(rip.recovered);
  EXPECT_LT(drs.app_outage * 10, rip.app_outage);
}

TEST(Comparison, DrsSurvivesBackplaneFailure) {
  sim::Simulator sim;
  net::ClusterNetwork scratch(sim, {.node_count = 8, .backplane = {}});
  const auto backplane = scratch.backplane_component(0);
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kDrs), {backplane});
  EXPECT_TRUE(result.recovered);
  EXPECT_LT(result.app_outage, 500_ms);
}

TEST(Comparison, DrsHandlesCrossSplitWithRelay) {
  const std::vector<net::ComponentIndex> cross = {
      net::ClusterNetwork::nic_component(0, 1),
      net::ClusterNetwork::nic_component(1, 0)};
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kDrs), cross);
  EXPECT_TRUE(result.recovered);
  EXPECT_LT(result.app_outage, 1_s);  // includes relay discovery
}

TEST(Comparison, StaticCrossSplitIsFatalButRipSurvivesEventually) {
  const std::vector<net::ComponentIndex> cross = {
      net::ClusterNetwork::nic_component(0, 1),
      net::ClusterNetwork::nic_component(1, 0)};
  const ScenarioResult stat =
      run_failure_scenario(base_config(ProtocolKind::kStatic), cross);
  EXPECT_FALSE(stat.recovered);

  ScenarioConfig rip_config = base_config(ProtocolKind::kRip);
  rip_config.measure = 20_s;
  const ScenarioResult rip = run_failure_scenario(rip_config, cross);
  EXPECT_TRUE(rip.recovered);  // multi-hop distance vector finds the relay
}

TEST(Comparison, NoFailureMeansNoLoss) {
  const ScenarioResult result =
      run_failure_scenario(base_config(ProtocolKind::kDrs), {});
  EXPECT_TRUE(result.recovered);  // first post-"injection" probe succeeds
  EXPECT_EQ(result.probes_lost, 0u);
  EXPECT_LT(result.app_outage, 100_ms);
}

TEST(ProtocolKindNames, Strings) {
  EXPECT_STREQ(to_string(ProtocolKind::kDrs), "drs");
  EXPECT_STREQ(to_string(ProtocolKind::kRip), "rip");
  EXPECT_STREQ(to_string(ProtocolKind::kStatic), "static");
}

}  // namespace
}  // namespace drs::reactive
