#include <gtest/gtest.h>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace drs::util {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(0.99), "0.99");
  EXPECT_EQ(format_double(1200.0), "1200");
  EXPECT_EQ(format_double(0.123456789, 4), "0.1235");
  EXPECT_EQ(format_double(-2.5), "-2.5");
  EXPECT_EQ(format_double(0.0), "0");
}

TEST(Table, TextRenderingAligns) {
  Table t({"N", "P"});
  t.add(18, 0.99);
  t.add(2, 1.0);
  const std::string text = t.to_text();
  EXPECT_NE(text.find(" N"), std::string::npos);
  EXPECT_NE(text.find("0.99"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "18");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MixedCellTypes) {
  Table t({"a", "b", "c"});
  t.add("x", 42u, 1.5);
  EXPECT_EQ(t.row(0), (std::vector<std::string>{"x", "42", "1.5"}));
}

std::optional<Flags> parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags::parse(static_cast<int>(argv.size()), argv.data(),
                      {{"nodes", "node count"},
                       {"p", "probability"},
                       {"fast", "boolean switch"},
                       {"name", "label"}});
}

TEST(Flags, SpaceAndEqualsForms) {
  auto flags = parse({"--nodes", "12", "--p=0.5"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->get_int("nodes", 0), 12);
  EXPECT_DOUBLE_EQ(flags->get_double("p", 0.0), 0.5);
}

TEST(Flags, BooleanBareFlag) {
  auto flags = parse({"--fast"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->get_bool("fast"));
  EXPECT_FALSE(flags->get_bool("missing"));
  EXPECT_TRUE(flags->get_bool("missing", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  auto flags = parse({});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->get_int("nodes", 8), 8);
  EXPECT_EQ(flags->get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(flags->has("nodes"));
}

TEST(Flags, UnknownFlagRejected) {
  EXPECT_FALSE(parse({"--bogus", "1"}).has_value());
}

TEST(Flags, PositionalRejected) {
  EXPECT_FALSE(parse({"stray"}).has_value());
}

TEST(Flags, HelpIsAccepted) {
  auto flags = parse({"--help"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->help_requested());
}

}  // namespace
}  // namespace drs::util
