// Differential property test: core::PeerTable (the struct-of-arrays probe
// fabric behind the batched sweep) must be observationally identical to a
// naive map-based reference model under randomized membership churn and
// probe traffic — same sweep order, same slot mapping, same outstanding
// set, same due list (in sweep order), same earliest deadline, same
// usable/generation lanes. Same seed discipline as
// tests/test_sim_queue_property.cpp: a few deep seeded runs plus many
// short ones.
//
// The generation counter is 16-bit and wraps by design (consumers compare
// for inequality only); the dedicated wraparound test drives an entry
// through the full 2^16 cycle.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <iterator>
#include <map>
#include <vector>

#include "core/peer_table.hpp"
#include "util/rng.hpp"

namespace drs::core {
namespace {

constexpr std::uint16_t kNodeCount = 48;

struct EntryModel {
  std::uint16_t seq = 0;
  std::int64_t deadline = PeerTable::kNoDeadline;
  std::int64_t last_seen = -1;
  bool usable = true;
  std::uint16_t gen = 0;

  bool outstanding() const { return deadline != PeerTable::kNoDeadline; }
};

/// Obviously-correct reference: ordered map keyed by peer id, so iteration
/// order IS the sweep order the SoA table must reproduce.
using Model = std::map<net::NodeId, std::array<EntryModel, 2>>;

void expect_equivalent(const PeerTable& table, const Model& model,
                       std::int64_t now_ns) {
  ASSERT_EQ(table.peer_count(), model.size());
  ASSERT_EQ(table.entry_count(), model.size() * 2u);

  std::int64_t min_deadline = PeerTable::kNoDeadline;
  std::vector<std::uint32_t> expected_due;
  std::size_t expected_usable = 0;
  std::uint16_t slot = 0;
  for (const auto& [peer, nets] : model) {
    ASSERT_TRUE(table.contains(peer));
    ASSERT_EQ(table.peer_at(slot), peer) << "sweep order diverged";
    ASSERT_EQ(table.slot_of(peer), slot);
    for (net::NetworkId network = 0; network < 2; ++network) {
      const std::uint32_t entry = PeerTable::entry(slot, network);
      const EntryModel& m = nets[network];
      ASSERT_EQ(table.entry_peer(entry), peer);
      ASSERT_EQ(PeerTable::entry_network(entry), network);
      ASSERT_EQ(table.outstanding(entry), m.outstanding());
      ASSERT_EQ(table.seq(entry), m.seq);
      ASSERT_EQ(table.deadline_ns(entry), m.deadline);
      ASSERT_EQ(table.last_seen_ns(entry), m.last_seen);
      ASSERT_EQ(table.usable(entry), m.usable);
      ASSERT_EQ(table.generation(entry), m.gen);
      if (m.deadline < min_deadline) min_deadline = m.deadline;
      if (m.deadline <= now_ns) expected_due.push_back(entry);
      expected_usable += m.usable ? 1u : 0u;
    }
    ++slot;
  }
  ASSERT_EQ(table.min_deadline_ns(), min_deadline);
  ASSERT_EQ(table.usable_count(), expected_usable);
  std::vector<std::uint32_t> due;
  table.collect_due(now_ns, due);
  ASSERT_EQ(due, expected_due) << "due list diverged (order or content)";

  for (net::NodeId peer = 0; peer < kNodeCount; ++peer) {
    ASSERT_EQ(table.contains(peer), model.count(peer) != 0) << peer;
  }
}

/// Picks a present peer uniformly; requires a non-empty model.
net::NodeId random_present(util::Rng& rng, const Model& model) {
  auto it = model.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(model.size())));
  return it->first;
}

void run_differential(std::uint64_t seed, int ops) {
  PeerTable table(kNodeCount);
  Model model;
  util::Rng rng(seed);
  std::int64_t now_ns = 0;
  std::uint16_t next_seq = 1;

  for (int op = 0; op < ops; ++op) {
    now_ns += static_cast<std::int64_t>(rng.next_below(500'000));
    const std::uint64_t roll = rng.next_below(12);
    if (roll < 3 || model.empty()) {
      // Membership add: duplicates and fresh ids both exercised.
      const auto peer =
          static_cast<net::NodeId>(rng.next_below(kNodeCount));
      ASSERT_EQ(table.add_peer(peer), model.count(peer) == 0) << peer;
      model.try_emplace(peer);
    } else if (roll < 5) {
      // Membership remove (sometimes of an absent id).
      const net::NodeId peer = rng.next_below(4) == 0
                                   ? static_cast<net::NodeId>(
                                         rng.next_below(kNodeCount))
                                   : random_present(rng, model);
      ASSERT_EQ(table.remove_peer(peer), model.count(peer) != 0) << peer;
      model.erase(peer);
    } else if (roll < 8) {
      // Probe send: seq + absolute deadline.
      const net::NodeId peer = random_present(rng, model);
      const auto network = static_cast<net::NetworkId>(rng.next_below(2));
      const std::uint32_t entry =
          PeerTable::entry(table.slot_of(peer), network);
      const std::uint16_t seq = next_seq++;
      const std::int64_t deadline =
          now_ns + static_cast<std::int64_t>(rng.next_below(2'000'000));
      table.mark_sent(entry, seq, deadline);
      model[peer][network].seq = seq;
      model[peer][network].deadline = deadline;
    } else if (roll < 9) {
      // Probe completion (reply or expiry — both clear the same way).
      const net::NodeId peer = random_present(rng, model);
      const auto network = static_cast<net::NetworkId>(rng.next_below(2));
      const std::uint32_t entry =
          PeerTable::entry(table.slot_of(peer), network);
      if (rng.next_below(2) == 0) {
        table.record_seen(entry, now_ns);
        model[peer][network].last_seen = now_ns;
      }
      table.clear_outstanding(entry);
      model[peer][network].deadline = PeerTable::kNoDeadline;
    } else {
      // Link verdict: fail/recover flips bump the generation (wrapping).
      const net::NodeId peer = random_present(rng, model);
      const auto network = static_cast<net::NetworkId>(rng.next_below(2));
      const std::uint32_t entry =
          PeerTable::entry(table.slot_of(peer), network);
      const bool usable = rng.next_below(2) == 0;
      EntryModel& m = model[peer][network];
      table.record_state(entry, usable);
      if (m.usable != usable) {
        m.gen = static_cast<std::uint16_t>(m.gen + 1u);  // wraps like the lane
      }
      m.usable = usable;
    }
    expect_equivalent(table, model, now_ns);
  }
}

TEST(PeerTableProperty, MatchesReferenceModelSeed1) {
  run_differential(0x9EE51u, 4000);
}

TEST(PeerTableProperty, MatchesReferenceModelSeed2) {
  run_differential(0x9EE52u, 4000);
}

TEST(PeerTableProperty, MatchesReferenceModelSeed3) {
  run_differential(0x9EE53u, 4000);
}

TEST(PeerTableProperty, ManySeedsShortRuns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_differential(seed * 0x9E3779B9u, 300);
  }
}

TEST(PeerTableProperty, GenerationCounterWrapsAtSixteenBits) {
  PeerTable table(2);
  ASSERT_TRUE(table.add_peer(1));
  const std::uint32_t entry = PeerTable::entry(table.slot_of(1), 0);
  ASSERT_EQ(table.generation(entry), 0u);

  // A full 2^16 flip cycle returns the counter to exactly where it started;
  // consumers only ever compare generations for inequality, so wrapping is
  // safe as long as it is exact.
  for (int flip = 0; flip < 65536; ++flip) {
    table.record_state(entry, flip % 2 == 0 ? false : true);
    ASSERT_EQ(table.generation(entry), (flip + 1) & 0xFFFF);
  }
  ASSERT_EQ(table.generation(entry), 0u);
  ASSERT_TRUE(table.usable(entry));

  // Re-asserting the same verdict never bumps the counter.
  table.record_state(entry, true);
  ASSERT_EQ(table.generation(entry), 0u);
}

TEST(PeerTableProperty, ReAddedPeerStartsFresh) {
  PeerTable table(8);
  ASSERT_TRUE(table.add_peer(3));
  const std::uint32_t entry = PeerTable::entry(table.slot_of(3), 1);
  table.mark_sent(entry, 41, 1'000'000);
  table.record_seen(entry, 900'000);
  table.record_state(entry, false);
  ASSERT_TRUE(table.remove_peer(3));
  ASSERT_FALSE(table.contains(3));

  ASSERT_TRUE(table.add_peer(3));
  const std::uint32_t fresh = PeerTable::entry(table.slot_of(3), 1);
  EXPECT_FALSE(table.outstanding(fresh));
  EXPECT_EQ(table.seq(fresh), 0u);
  EXPECT_EQ(table.last_seen_ns(fresh), -1);
  EXPECT_TRUE(table.usable(fresh));
  EXPECT_EQ(table.generation(fresh), 0u);
  EXPECT_EQ(table.min_deadline_ns(), PeerTable::kNoDeadline);
}

}  // namespace
}  // namespace drs::core
