#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace drs::util {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderror(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10 - 5;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, BucketBoundariesAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, QuantilesOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, AsciiRenderingContainsEveryBucket) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string art = h.to_ascii();
  EXPECT_NE(art.find("[0, 1)"), std::string::npos);
  EXPECT_NE(art.find("[1, 2)"), std::string::npos);
}

TEST(Wilson, ZeroTrialsIsVacuous) {
  const Interval i = wilson_interval(0, 0);
  EXPECT_EQ(i.lo, 0.0);
  EXPECT_EQ(i.hi, 1.0);
}

TEST(Wilson, ExtremesStayInUnitInterval) {
  const Interval all = wilson_interval(100, 100);
  EXPECT_GT(all.lo, 0.9);
  EXPECT_LE(all.hi, 1.0);
  const Interval none = wilson_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.1);
}

TEST(Wilson, ContainsTrueProportionForFairCoin) {
  // 500/1000 at 95 %: p=0.5 must be inside, and the width ~ 2*1.96*0.0158.
  const Interval i = wilson_interval(500, 1000);
  EXPECT_TRUE(i.contains(0.5));
  EXPECT_NEAR(i.width(), 0.062, 0.004);
}

TEST(Wilson, HigherConfidenceIsWider) {
  const Interval i95 = wilson_interval(30, 100, 1.96);
  const Interval i99 = wilson_interval(30, 100, 2.576);
  EXPECT_GT(i99.width(), i95.width());
  EXPECT_TRUE(i99.contains(0.3));
}

}  // namespace
}  // namespace drs::util
