#include "reactive/ospf_lite.hpp"

#include <gtest/gtest.h>

#include "analytic/enumerate.hpp"
#include "proto/icmp.hpp"

namespace drs::reactive {
namespace {

using namespace drs::util::literals;

OspfConfig fast_ospf() {
  // RFC proportions (dead = 4 x hello) scaled 1:20 so tests run in seconds.
  OspfConfig c;
  c.hello_interval = 500_ms;
  c.dead_interval = 2_s;
  c.lsa_refresh = 1500_ms;
  return c;
}

class OspfTest : public ::testing::Test {
 protected:
  OspfTest() : network(sim, {.node_count = 5, .backplane = {}}) {
    for (net::NodeId i = 0; i < 5; ++i) {
      icmp.push_back(std::make_unique<proto::IcmpService>(network.host(i)));
    }
  }

  bool ping(net::NodeId from, net::Ipv4Addr to) {
    bool ok = false;
    bool done = false;
    proto::PingOptions options;
    options.timeout = 50_ms;
    icmp[from]->ping(to, options, [&](const proto::PingResult& r) {
      ok = r.success;
      done = true;
    });
    const auto deadline = sim.now() + 100_ms;
    while (!done && sim.now() < deadline && !sim.idle()) sim.step();
    return ok;
  }

  sim::Simulator sim;
  net::ClusterNetwork network;
  std::vector<std::unique_ptr<proto::IcmpService>> icmp;
};

TEST_F(OspfTest, HellosBuildFullAdjacency) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  for (net::NodeId i = 0; i < 5; ++i) {
    for (net::NodeId j = 0; j < 5; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(ospf.daemon(i).adjacent(j, 0)) << i << "-" << j;
      EXPECT_TRUE(ospf.daemon(i).adjacent(j, 1)) << i << "-" << j;
    }
    // LSDB has everyone (own entry included).
    EXPECT_EQ(ospf.daemon(i).lsdb_size(), 5u);
  }
}

TEST_F(OspfTest, HealthyClusterInstallsNoHostRoutes) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(3_s);
  for (net::NodeId i = 0; i < 5; ++i) {
    for (const auto& route : network.host(i).routing_table().routes()) {
      EXPECT_NE(route.origin, net::RouteOrigin::kOspf) << route.to_string();
    }
  }
}

TEST_F(OspfTest, NicFailureReroutesAfterDeadInterval) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  ASSERT_TRUE(ping(0, net::cluster_ip(0, 1)));

  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  // Inside the dead interval: nothing has reacted; the path is black-holed.
  sim.run_for(500_ms);
  EXPECT_FALSE(ping(0, net::cluster_ip(0, 1)));
  // After dead interval + hello slack: the /32 via network B is installed.
  sim.run_for(fast_ospf().dead_interval + 2 * fast_ospf().hello_interval);
  EXPECT_TRUE(ping(0, net::cluster_ip(0, 1)));
  const auto route = network.host(0).routing_table().lookup(net::cluster_ip(0, 1));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->origin, net::RouteOrigin::kOspf);
  EXPECT_EQ(route->out_ifindex, 1);
  EXPECT_GT(ospf.daemon(0).metrics().neighbors_lost, 0u);
}

TEST_F(OspfTest, CrossSplitUsesRelayViaLsdb) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(fast_ospf().dead_interval + 3 * fast_ospf().hello_interval);
  EXPECT_TRUE(ping(0, net::cluster_ip(0, 1)));
  const auto route = network.host(0).routing_table().lookup(net::cluster_ip(0, 1));
  ASSERT_TRUE(route.has_value());
  // Relay route: next hop is some third node's address, metric 3.
  EXPECT_EQ(route->metric, 3);
  net::NetworkId relay_net;
  net::NodeId relay_node;
  ASSERT_TRUE(net::parse_cluster_ip(route->next_hop, relay_net, relay_node));
  EXPECT_NE(relay_node, 0);
  EXPECT_NE(relay_node, 1);
}

TEST_F(OspfTest, RecoveryRemovesHostRoutes) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(fast_ospf().dead_interval + 2 * fast_ospf().hello_interval);
  ASSERT_TRUE(network.host(0).routing_table().lookup(net::cluster_ip(0, 1))
                  ->origin == net::RouteOrigin::kOspf);

  network.heal_all();
  sim.run_for(3 * fast_ospf().hello_interval);
  const auto route = network.host(0).routing_table().lookup(net::cluster_ip(0, 1));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->origin, net::RouteOrigin::kStatic);  // subnet route again
}

TEST_F(OspfTest, DetectionIsDeadIntervalBound) {
  // The structural difference from DRS: reaction time tracks dead_interval.
  OspfConfig slow = fast_ospf();
  slow.hello_interval = 1_s;
  slow.dead_interval = 4_s;
  OspfSystem ospf(network, slow);
  ospf.start();
  sim.run_for(3_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(2_s);  // half the dead interval
  EXPECT_FALSE(ping(0, net::cluster_ip(0, 1)));
  sim.run_for(4_s);
  EXPECT_TRUE(ping(0, net::cluster_ip(0, 1)));
}

TEST_F(OspfTest, LsaSequenceGuardsAgainstStaleFloods) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  const auto flooded_before = ospf.daemon(2).metrics().lsas_flooded;
  // Steady state: refresh LSAs keep flowing, each flooded at most once per
  // receiver (no exponential re-flooding).
  sim.run_for(3_s);
  const auto flooded_after = ospf.daemon(2).metrics().lsas_flooded;
  // 4 peers x 2 refreshes in 3 s at 1.5 s cadence = ~8 useful floods; allow
  // generous headroom but catch a flood storm (which would be thousands).
  EXPECT_LT(flooded_after - flooded_before, 40u);
}

TEST_F(OspfTest, StopsCleanly) {
  OspfSystem ospf(network, fast_ospf());
  ospf.start();
  sim.run_for(2_s);
  ospf.stop();
  const auto sent = ospf.daemon(0).metrics().hellos_sent;
  sim.run_for(3_s);
  EXPECT_EQ(ospf.daemon(0).metrics().hellos_sent, sent);
}

// Exhaustive double-failure sweep: once converged, OSPF-lite must achieve
// exactly the connectivity the survivability model credits a
// direct-or-one-relay protocol with — same predicate as DRS, only the
// convergence clock differs (dead interval vs probe cycle).
class OspfDoubleFailure
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OspfDoubleFailure, SteadyStateMatchesSurvivabilityModel) {
  const auto [c1, c2] = GetParam();
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  std::vector<std::unique_ptr<proto::IcmpService>> icmp;
  for (net::NodeId i = 0; i < 4; ++i) {
    icmp.push_back(std::make_unique<proto::IcmpService>(network.host(i)));
  }
  OspfConfig config;
  config.hello_interval = 200_ms;
  config.dead_interval = 800_ms;
  config.lsa_refresh = 600_ms;
  OspfSystem ospf(network, config);
  ospf.start();
  sim.run_for(2_s);
  network.set_component_failed(static_cast<net::ComponentIndex>(c1), true);
  network.set_component_failed(static_cast<net::ComponentIndex>(c2), true);
  sim.run_for(config.dead_interval + 6 * config.hello_interval + 1_s);

  analytic::ComponentSet failed;
  failed.set(c1);
  failed.set(c2);
  const bool expected = analytic::pair_connected(4, failed, 0, 1);

  bool reachable = false;
  bool done = false;
  proto::PingOptions options;
  options.timeout = 50_ms;
  icmp[0]->ping(net::cluster_ip(0, 1), options, [&](const proto::PingResult& r) {
    reachable = r.success;
    done = true;
  });
  const auto deadline = sim.now() + 100_ms;
  while (!done && sim.now() < deadline && !sim.idle()) sim.step();
  EXPECT_EQ(reachable, expected) << "components " << c1 << "," << c2;
}

std::vector<std::pair<int, int>> ospf_component_pairs() {
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) pairs.emplace_back(a, b);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(Exhaustive, OspfDoubleFailure,
                         ::testing::ValuesIn(ospf_component_pairs()));

TEST(OspfPayloads, SizesAndDescriptions) {
  OspfHello hello;
  hello.advertiser = 3;
  EXPECT_EQ(hello.wire_size(), 44u);
  EXPECT_NE(hello.describe().find("hello"), std::string::npos);
  OspfLsa lsa;
  lsa.origin = 2;
  lsa.sequence = 9;
  EXPECT_EQ(lsa.wire_size(), 36u);
  EXPECT_NE(lsa.describe().find("seq=9"), std::string::npos);
}

}  // namespace
}  // namespace drs::reactive
