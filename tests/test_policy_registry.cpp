// The policy registry: stable sorted names, validation routed through each
// policy's parameter struct, descriptive unknown-name failures, and the
// uniform control_messages() overhead hook across every registered policy.
#include "policy/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace drs::policy {
namespace {

using namespace drs::util::literals;

TEST(PolicyRegistry, NamesAreSortedAndComplete) {
  const std::vector<std::string> names = policy_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const std::vector<std::string> expected = {
      "alternate_path", "drs", "ospf", "rip", "static", "static_resilient"};
  EXPECT_EQ(names, expected);
}

TEST(PolicyRegistry, EveryFactoryHasHelpText) {
  for (const PolicyFactory& factory : policies()) {
    EXPECT_NE(factory.help, nullptr);
    EXPECT_GT(std::string(factory.help).size(), 10u) << factory.name;
  }
}

TEST(PolicyRegistry, FindPolicyReturnsNullForUnknown) {
  EXPECT_NE(find_policy("drs"), nullptr);
  EXPECT_NE(find_policy("alternate_path"), nullptr);
  EXPECT_EQ(find_policy("bgp"), nullptr);
  EXPECT_EQ(find_policy(""), nullptr);
}

TEST(PolicyRegistry, DefaultParamsValidateForEveryPolicy) {
  const PolicyParams params;
  for (const std::string& name : policy_names()) {
    const auto error = validate_policy(name, params);
    EXPECT_FALSE(error.has_value()) << name << ": " << *error;
  }
}

TEST(PolicyRegistry, UnknownNameValidationListsRegisteredNames) {
  const auto error = validate_policy("ripv2", PolicyParams{});
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("ripv2"), std::string::npos) << *error;
  for (const std::string& name : policy_names()) {
    EXPECT_NE(error->find(name), std::string::npos) << *error;
  }
}

TEST(PolicyRegistry, PerPolicyParameterValidationIsRouted) {
  PolicyParams params;
  params.rip.advertise_interval = util::Duration::zero();
  EXPECT_TRUE(validate_policy("rip", params).has_value());
  EXPECT_FALSE(validate_policy("drs", params).has_value());  // others fine

  params = PolicyParams{};
  params.ospf.dead_interval = params.ospf.hello_interval;
  EXPECT_TRUE(validate_policy("ospf", params).has_value());

  params = PolicyParams{};
  params.drs.failures_to_down = 0;
  EXPECT_TRUE(validate_policy("drs", params).has_value());

  params = PolicyParams{};
  params.static_resilient.prefer_network = net::kNetworksPerHost;
  EXPECT_TRUE(validate_policy("static_resilient", params).has_value());

  params = PolicyParams{};
  params.alternate_path.notify_delay = util::Duration::zero();
  EXPECT_TRUE(validate_policy("alternate_path", params).has_value());
}

TEST(PolicyRegistry, MakePolicyThrowsDescriptivelyOnUnknownName) {
  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
  try {
    (void)make_policy("bgp", network, PolicyParams{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bgp"), std::string::npos) << what;
    EXPECT_NE(what.find("drs"), std::string::npos) << what;
  }
}

TEST(PolicyRegistry, MakePolicyThrowsOnInvalidParams) {
  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
  PolicyParams params;
  params.rip.route_timeout = params.rip.advertise_interval;  // must exceed
  EXPECT_THROW((void)make_policy("rip", network, params),
               std::invalid_argument);
}

TEST(PolicyRegistry, ConstructedPoliciesReportTheirRegisteredName) {
  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
  for (const std::string& name : policy_names()) {
    const auto policy = make_policy(name, network, PolicyParams{});
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyRegistry, OverheadHookIsUniformAcrossPolicies) {
  // Every policy reports through control_messages(); the precomputed and
  // static ones send nothing, the probing/advertising ones send plenty.
  for (const std::string& name : policy_names()) {
    sim::Simulator simulator;
    net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
    const auto policy = make_policy(name, network, PolicyParams{});
    policy->start();
    simulator.run_for(30_s);
    const std::uint64_t messages = policy->control_messages();
    if (name == "static" || name == "static_resilient") {
      EXPECT_EQ(messages, 0u) << name;
    } else if (name == "alternate_path") {
      EXPECT_EQ(messages, 0u) << name;  // quiescent until a failure notice
    } else {
      EXPECT_GT(messages, 0u) << name;
    }
    policy->stop();
  }
}

TEST(PolicyRegistry, FailureHooksAreSafeForEveryPolicy) {
  // The default hooks are no-ops for probing policies and trigger
  // re-resolution for precomputed ones; none may crash or allocate routes
  // that break connectivity bookkeeping.
  for (const std::string& name : policy_names()) {
    sim::Simulator simulator;
    net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
    const auto policy = make_policy(name, network, PolicyParams{});
    policy->start();
    simulator.run_for(1_s);
    const auto nic = net::ClusterNetwork::nic_component(1, 0);
    network.set_component_failed(nic, true);
    policy->on_component_failed(nic);
    simulator.run_for(1_s);
    network.set_component_failed(nic, false);
    policy->on_component_restored(nic);
    simulator.run_for(1_s);
    policy->stop();
  }
}

}  // namespace
}  // namespace drs::policy
