#include "cluster/failure_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace drs::cluster {
namespace {

using namespace drs::util::literals;

TraceConfig big_trace() {
  TraceConfig config;
  config.node_count = 100;  // the paper's fleet size
  config.horizon = 3600_s;
  config.failures_per_server = 5.0;  // plenty of events for tight statistics
  config.network_share = 0.13;
  config.seed = 2026;
  return config;
}

TEST(FailureTrace, EventsSortedWithinHorizon) {
  const auto trace = generate_trace(big_trace());
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(std::is_sorted(
      trace.begin(), trace.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; }));
  for (const auto& event : trace) {
    EXPECT_GE(event.at, util::SimTime::zero());
    EXPECT_LT(event.at, util::SimTime::zero() + 3600_s);
    EXPECT_GT(event.repair_time, util::Duration::zero());
  }
}

TEST(FailureTrace, EventCountNearExpectation) {
  const auto trace = generate_trace(big_trace());
  // 100 servers x 5 failures: Poisson(500), sd ~ 22.
  EXPECT_NEAR(static_cast<double>(trace.size()), 500.0, 100.0);
}

TEST(FailureTrace, NetworkShareMatchesPaperStatistic) {
  const auto trace = generate_trace(big_trace());
  const TraceStats stats = summarize(trace);
  EXPECT_EQ(stats.total, trace.size());
  // 13 % +- sampling noise.
  EXPECT_NEAR(stats.network_fraction(), 0.13, 0.05);
  EXPECT_GT(stats.nic, 0u);
  EXPECT_EQ(stats.network_related, stats.nic + stats.backplane);
}

TEST(FailureTrace, DeterministicPerSeed) {
  const auto a = generate_trace(big_trace());
  const auto b = generate_trace(big_trace());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].failure_class, b[i].failure_class);
  }
  TraceConfig other = big_trace();
  other.seed = 1;
  EXPECT_NE(generate_trace(other).size(), 0u);
}

TEST(FailureTrace, ZeroRateYieldsEmptyTrace) {
  TraceConfig config;
  config.failures_per_server = 0.0;
  EXPECT_TRUE(generate_trace(config).empty());
}

TEST(FailureTrace, AllNetworkShare) {
  TraceConfig config = big_trace();
  config.network_share = 1.0;
  const TraceStats stats = summarize(generate_trace(config));
  EXPECT_EQ(stats.network_related, stats.total);
}

TEST(FailureTrace, NodeAndNetworkFieldsInRange) {
  const auto trace = generate_trace(big_trace());
  for (const auto& event : trace) {
    if (event.failure_class == FailureClass::kNic) {
      EXPECT_LT(event.node, 100);
    }
    EXPECT_LT(event.network, 2);
  }
}

TEST(FailureClassNames, Strings) {
  EXPECT_STREQ(to_string(FailureClass::kNic), "nic");
  EXPECT_STREQ(to_string(FailureClass::kBackplane), "backplane");
  EXPECT_STREQ(to_string(FailureClass::kOther), "other");
}

TEST(TraceStats, EmptyTraceFractionIsZero) {
  EXPECT_EQ(summarize({}).network_fraction(), 0.0);
}

}  // namespace
}  // namespace drs::cluster
