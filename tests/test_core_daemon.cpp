#include "core/daemon.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "net/failure.hpp"

namespace drs::core {
namespace {

using namespace drs::util::literals;

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest()
      : network(sim, {.node_count = 6, .backplane = {}}),
        system(network, config()),
        injector(network) {
    system.start();
  }

  static DrsConfig config() {
    DrsConfig c;
    c.probe_interval = 50_ms;
    c.probe_timeout = 20_ms;
    c.failures_to_down = 2;
    c.discover_timeout = 25_ms;
    return c;
  }

  /// One detection window: failures_to_down probe cycles + slack.
  util::Duration detection_budget() const { return 500_ms; }

  sim::Simulator sim;
  net::ClusterNetwork network;
  DrsSystem system;
  net::FailureInjector injector;
};

TEST_F(DaemonTest, HealthyClusterStaysDirect) {
  sim.run_for(1_s);
  for (net::NodeId i = 0; i < 6; ++i) {
    for (net::NodeId j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_EQ(system.daemon(i).peer_mode(j), PeerRouteMode::kDirect);
    }
    EXPECT_EQ(system.daemon(i).metrics().links_declared_down, 0u);
    EXPECT_TRUE(system.daemon(i).host_routes_empty());
  }
}

TEST_F(DaemonTest, PeerPrimaryNicFailureDetoursViaSecondary) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(detection_budget());
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kViaNetworkB);
  EXPECT_TRUE(system.test_reachability(0, 1));
  // And symmetrically from node 1's perspective towards everyone.
  EXPECT_EQ(system.daemon(1).peer_mode(0), PeerRouteMode::kViaNetworkB);
}

TEST_F(DaemonTest, OwnNicFailureDetoursEveryPeer) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 0), true);
  sim.run_for(detection_budget());
  for (net::NodeId peer = 1; peer < 6; ++peer) {
    EXPECT_EQ(system.daemon(0).peer_mode(peer), PeerRouteMode::kViaNetworkB)
        << "peer " << peer;
    EXPECT_TRUE(system.test_reachability(0, peer));
  }
}

TEST_F(DaemonTest, BackplaneFailureDetoursViaOtherNetwork) {
  sim.run_for(200_ms);
  injector.apply_now(network.backplane_component(0), true);
  sim.run_for(detection_budget());
  EXPECT_EQ(system.daemon(2).peer_mode(4), PeerRouteMode::kViaNetworkB);
  EXPECT_TRUE(system.test_reachability(2, 4));
}

TEST_F(DaemonTest, CrossSplitSelectsRelayDeterministically) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kRelay);
  // Deterministic choice: lowest-id healthy candidate, which is node 2.
  ASSERT_TRUE(system.daemon(0).relay_for(1).has_value());
  EXPECT_EQ(*system.daemon(0).relay_for(1), 2);
  EXPECT_TRUE(system.test_reachability(0, 1));
  EXPECT_GE(system.daemon(2).active_leases(), 1u);
}

TEST_F(DaemonTest, RelayPathSurvivesTtl) {
  // Loop-freedom check: through the relay, a packet crosses at most one
  // intermediate hop, so a TTL of 2 must be enough.
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  std::uint64_t ttl_drops = 0;
  for (net::NodeId i = 0; i < 6; ++i) {
    ttl_drops += network.host(i).counters().drop_ttl;
  }
  EXPECT_EQ(ttl_drops, 0u);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

TEST_F(DaemonTest, NoRelayWhenDisabled) {
  system.stop();
  sim::Simulator local_sim;
  net::ClusterNetwork local_net(local_sim, {.node_count = 6, .backplane = {}});
  DrsConfig no_relay = config();
  no_relay.allow_relay = false;
  DrsSystem local(local_net, no_relay);
  local.start();
  local_sim.run_for(200_ms);
  local_net.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  local_net.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  local_sim.run_for(2_s);
  EXPECT_EQ(local.daemon(0).peer_mode(1), PeerRouteMode::kUnreachable);
  EXPECT_FALSE(local.test_reachability(0, 1));
  EXPECT_EQ(local.daemon(0).metrics().discoveries_started, 0u);
}

TEST_F(DaemonTest, HealRestoresDirectAndCleansUp) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  ASSERT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kRelay);

  network.heal_all();
  sim.run_for(1_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kDirect);
  EXPECT_TRUE(system.daemon(0).host_routes_empty());
  // Teardown reached the relay: no leases linger.
  for (net::NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(system.daemon(i).active_leases(), 0u) << "node " << i;
  }
}

TEST_F(DaemonTest, RelayFailureTriggersRediscovery) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  ASSERT_TRUE(system.daemon(0).relay_for(1).has_value());
  const net::NodeId first_relay = *system.daemon(0).relay_for(1);
  EXPECT_EQ(first_relay, 2);

  // Kill the relay's bridging ability entirely.
  injector.apply_now(net::ClusterNetwork::nic_component(first_relay, 0), true);
  injector.apply_now(net::ClusterNetwork::nic_component(first_relay, 1), true);
  sim.run_for(2_s);
  ASSERT_TRUE(system.daemon(0).relay_for(1).has_value());
  EXPECT_NE(*system.daemon(0).relay_for(1), first_relay);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

TEST_F(DaemonTest, LeaseExpiresWithoutRefresh) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  ASSERT_GE(system.daemon(2).active_leases(), 1u);
  // Requester vanishes (host dies completely): refreshes stop; the lease
  // must expire on its own.
  system.daemon(0).stop();
  system.daemon(1).stop();
  sim.run_for(config().relay_route_lifetime + config().probe_interval * 2 +
              500_ms);
  EXPECT_EQ(system.daemon(2).active_leases(), 0u);
  EXPECT_GE(system.daemon(2).metrics().leases_expired, 1u);
}

TEST_F(DaemonTest, DetectionLatencyWithinBudget) {
  sim.run_for(200_ms);
  const util::SimTime injected = sim.now();
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(detection_budget());
  // Find node 0's down transition for (peer 1, net 0).
  const auto& history = system.daemon(0).links().history();
  util::SimTime detected = util::SimTime::max();
  for (const auto& t : history) {
    if (t.peer == 1 && t.network == 0 && t.to == LinkState::kDown) {
      detected = t.at;
      break;
    }
  }
  ASSERT_NE(detected, util::SimTime::max());
  const util::Duration latency = detected - injected;
  // Budget: at most failures_to_down cycles + one timeout + slack.
  EXPECT_LE(latency, config().probe_interval * 3 + config().probe_timeout);
  EXPECT_GT(latency, util::Duration::zero());
}

TEST_F(DaemonTest, RouteChangesAreRecorded) {
  sim.run_for(200_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(detection_budget());
  network.heal_all();
  sim.run_for(detection_budget());
  const auto& changes = system.daemon(0).metrics().route_changes;
  ASSERT_GE(changes.size(), 2u);
  EXPECT_EQ(changes[0].peer, 1);
  EXPECT_EQ(changes[0].from, PeerRouteMode::kDirect);
  EXPECT_EQ(changes[0].to, PeerRouteMode::kViaNetworkB);
  EXPECT_EQ(changes.back().to, PeerRouteMode::kDirect);
}

TEST_F(DaemonTest, StopQuiescesCompletely) {
  sim.run_for(200_ms);
  system.stop();
  const std::uint64_t probes = system.total_probes_sent();
  sim.run_for(1_s);
  EXPECT_EQ(system.total_probes_sent(), probes);
  EXPECT_TRUE(sim.idle());
}

TEST_F(DaemonTest, PartialMonitoringProbesOnlyConfiguredPeers) {
  system.stop();
  sim::Simulator local_sim;
  net::ClusterNetwork local_net(local_sim, {.node_count = 6, .backplane = {}});
  DrsConfig partial = config();
  partial.monitored_peers = std::vector<net::NodeId>{1, 2};
  proto::IcmpService icmp0(local_net.host(0));
  DrsDaemon daemon(local_net.host(0), icmp0, 6, partial);
  // Echo responders so the monitored links are UP.
  proto::IcmpService icmp1(local_net.host(1));
  proto::IcmpService icmp2(local_net.host(2));
  proto::IcmpService icmp5(local_net.host(5));
  daemon.start();
  local_sim.run_for(500_ms);

  EXPECT_TRUE(daemon.monitors(1));
  EXPECT_TRUE(daemon.monitors(2));
  EXPECT_FALSE(daemon.monitors(5));
  EXPECT_EQ(daemon.monitored_count(), 2u);
  // 2 peers x 2 networks per 50 ms cycle, ~10 cycles: about 40 probes, and
  // certainly none to node 5.
  EXPECT_GT(daemon.metrics().probes_sent, 20u);
  EXPECT_LT(daemon.metrics().probes_sent, 60u);
  EXPECT_EQ(icmp5.echo_requests_answered(), 0u);
}

TEST_F(DaemonTest, UnmonitoredPeersNeverGetOffers) {
  // Nodes 2..5 monitor only each other; 0 and 1 monitor everyone. When the
  // 0-1 pair cross-splits, nobody with evidence about both can offer... but
  // 2..5 do monitor 0? No: restrict them to {2,3,4,5} minus self. Node 0's
  // discovery for peer 1 must then find no relay.
  system.stop();
  sim::Simulator local_sim;
  net::ClusterNetwork local_net(local_sim, {.node_count = 6, .backplane = {}});
  std::vector<std::unique_ptr<proto::IcmpService>> icmps;
  std::vector<std::unique_ptr<DrsDaemon>> daemons;
  for (net::NodeId i = 0; i < 6; ++i) {
    DrsConfig c = config();
    if (i >= 2) {
      std::vector<net::NodeId> others;
      for (net::NodeId j = 2; j < 6; ++j) {
        if (j != i) others.push_back(j);
      }
      c.monitored_peers = others;
    }
    icmps.push_back(std::make_unique<proto::IcmpService>(local_net.host(i)));
    daemons.push_back(
        std::make_unique<DrsDaemon>(local_net.host(i), *icmps.back(), 6, c));
    daemons.back()->start();
  }
  local_sim.run_for(500_ms);
  local_net.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  local_net.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  local_sim.run_for(2_s);
  // Discovery ran but nobody volunteered: candidates lack link state for
  // the target (node 1) — they do not monitor it.
  EXPECT_GT(daemons[0]->metrics().discoveries_started, 0u);
  EXPECT_EQ(daemons[0]->metrics().offers_received, 0u);
  EXPECT_EQ(daemons[0]->peer_mode(1), PeerRouteMode::kUnreachable);
}

TEST_F(DaemonTest, MetricsSummaryMentionsKeyCounters) {
  sim.run_for(300_ms);
  const std::string summary = system.daemon(0).metrics().summary();
  EXPECT_NE(summary.find("probes="), std::string::npos);
  EXPECT_NE(summary.find("discoveries="), std::string::npos);
}

}  // namespace
}  // namespace drs::core
