#include "analytic/combinatorics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drs::analytic {
namespace {

TEST(Binomial, BaseCases) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 1), 5u);
}

TEST(Binomial, OutOfDomainIsZero) {
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(5, -1), 0u);
  EXPECT_EQ(binomial(-1, 0), 0u);
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(10, 5), 252u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
  EXPECT_EQ(binomial(130, 10), binomial(130, 120));  // symmetry
  EXPECT_EQ(to_string(binomial(100, 50)),
            "100891344545564193334812497256");
}

TEST(Binomial, PascalIdentityHolds) {
  for (std::int64_t n = 1; n <= 40; ++n) {
    for (std::int64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Binomial, SymmetryHolds) {
  for (std::int64_t n = 0; n <= 40; ++n) {
    for (std::int64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n, n - k));
    }
  }
}

TEST(Binomial, RowSumsArePowersOfTwo) {
  for (std::int64_t n = 0; n <= 30; ++n) {
    u128 sum = 0;
    for (std::int64_t k = 0; k <= n; ++k) sum += binomial(n, k);
    EXPECT_EQ(sum, u128{1} << n);
  }
}

TEST(Binomial, PaperRangeFitsExactly) {
  // Largest quantity any reproduced experiment needs: C(130, 10).
  const u128 v = binomial(130, 10);
  EXPECT_EQ(to_string(v), "266401260897200");
  EXPECT_GT(to_double(v), 2.6e14);
  EXPECT_LT(to_double(v), 2.7e14);
}

TEST(BinomialDouble, AgreesWithExactWhereBothApply) {
  for (std::int64_t n : {10, 50, 130}) {
    for (std::int64_t k : {0, 1, 5, 10}) {
      const double exact = to_double(binomial(n, k));
      EXPECT_NEAR(binomial_double(n, k) / exact, 1.0, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
  EXPECT_EQ(binomial_double(5, 9), 0.0);
}

TEST(LogBinomial, MatchesLogOfExact) {
  EXPECT_NEAR(log_binomial(52, 5), std::log(2598960.0), 1e-9);
  EXPECT_EQ(log_binomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(CoverageCount, OutOfDomainIsZero) {
  EXPECT_EQ(coverage_count(3, 2), 0u);  // r < m: some node unscathed
  EXPECT_EQ(coverage_count(3, 7), 0u);  // r > 2m: impossible
  EXPECT_EQ(coverage_count(-1, 0), 0u);
}

TEST(CoverageCount, EmptySystemHasOneCovering) {
  EXPECT_EQ(coverage_count(0, 0), 1u);
}

TEST(CoverageCount, SmallCasesByHand) {
  // m=1 node: cover with 1 of its 2 NICs (2 ways) or both (1 way).
  EXPECT_EQ(coverage_count(1, 1), 2u);
  EXPECT_EQ(coverage_count(1, 2), 1u);
  // m=2: r=2 -> each node loses one: 2*2 = 4.
  EXPECT_EQ(coverage_count(2, 2), 4u);
  // m=2, r=3 -> one node loses both (2 choices), other loses one (2): 4.
  EXPECT_EQ(coverage_count(2, 3), 4u);
  EXPECT_EQ(coverage_count(2, 4), 1u);
}

TEST(CoverageCount, MatchesBruteForceEnumeration) {
  // Enumerate all subsets of 2m NICs of size r; count those hitting every
  // node.
  for (std::int64_t m = 1; m <= 5; ++m) {
    for (std::int64_t r = 0; r <= 2 * m; ++r) {
      std::uint64_t brute = 0;
      const std::uint64_t universe = 1ull << (2 * m);
      for (std::uint64_t mask = 0; mask < universe; ++mask) {
        if (__builtin_popcountll(mask) != r) continue;
        bool covers = true;
        for (std::int64_t node = 0; node < m; ++node) {
          if ((mask >> (2 * node) & 3ull) == 0) covers = false;
        }
        if (covers) ++brute;
      }
      EXPECT_EQ(coverage_count(m, r), u128{brute}) << "m=" << m << " r=" << r;
    }
  }
}

TEST(CoverageCount, SumsToSurjectionTotal) {
  // Summing T(m, r) over r gives the number of NIC subsets covering all
  // nodes: prod over nodes of (2^2 - 1) = 3^m.
  for (std::int64_t m = 0; m <= 10; ++m) {
    u128 sum = 0;
    for (std::int64_t r = 0; r <= 2 * m; ++r) sum += coverage_count(m, r);
    u128 expected = 1;
    for (std::int64_t i = 0; i < m; ++i) expected *= 3;
    EXPECT_EQ(sum, expected) << "m=" << m;
  }
}

TEST(U128Formatting, ToStringAndToDouble) {
  EXPECT_EQ(to_string(u128{0}), "0");
  EXPECT_EQ(to_string(u128{42}), "42");
  EXPECT_EQ(to_string((u128{1} << 64)), "18446744073709551616");
  EXPECT_DOUBLE_EQ(to_double(u128{1} << 64), 0x1.0p64);
  EXPECT_DOUBLE_EQ(to_double(u128{1000}), 1000.0);
}

}  // namespace
}  // namespace drs::analytic
