// Invariants of the sharded engine that the differential corpus relies on
// but does not observe directly:
//   - window containment: with check_windows on, no event ever executes
//     outside the window its shard was released for;
//   - conservative arrivals: no cross-shard event is ever enqueued for a
//     sim-time the destination shard may already have executed past
//     (min_foreign_margin_ns >= 0);
//   - the merged trace is globally time-ordered (gseq order refines time
//     order, so a sorted merge is an invariant, not a post-processing step);
//   - GlobalEventId keeps identities distinct across shard namespaces even
//     where per-queue 32-bit generations wrap and local ids collide.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "chaos/campaign.hpp"
#include "cluster/partition.hpp"
#include "obs/event.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace drs {
namespace {

// -- GlobalEventId ------------------------------------------------------------

sim::EventId local_id(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<sim::EventId>(generation) << 32) | slot;
}

TEST(ShardedProperty, GlobalIdsDistinctAcrossShardNamespaces) {
  // Local ids recycle (generation, slot) per queue, so two shards WILL
  // produce equal local ids; the qualified pair must stay unique — including
  // when a queue's generation counter wraps back to a previously-issued
  // value for a different slot.
  const std::uint32_t generations[] = {0u, 1u, 0xFFFFFFFFu};
  const std::uint32_t slots[] = {0u, 7u};
  const std::uint32_t shards[] = {0u, 1u, 7u};
  std::set<sim::GlobalEventId> seen;
  for (const std::uint32_t shard : shards)
    for (const std::uint32_t generation : generations)
      for (const std::uint32_t slot : slots)
        EXPECT_TRUE(
            seen.insert(sim::GlobalEventId{shard, local_id(generation, slot)})
                .second);
  EXPECT_EQ(seen.size(), 18u);

  // Same local id, different shard: distinct and ordered by shard first.
  const sim::GlobalEventId a{0, local_id(3, 5)};
  const sim::GlobalEventId b{1, local_id(3, 5)};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  // Generation wraparound: gen 2^32-1 then gen 0 of the same slot are the
  // same queue cell at different lifetimes — distinct identities.
  EXPECT_NE((sim::GlobalEventId{2, local_id(0xFFFFFFFFu, 9)}),
            (sim::GlobalEventId{2, local_id(0u, 9)}));
}

// -- engine-level window containment -----------------------------------------

/// Self-rescheduling chain with a stride deliberately misaligned with the
/// window length, so chain ticks keep straddling window boundaries.
struct Chain {
  sim::Simulator* sim = nullptr;
  std::int64_t step_ns = 0;
  std::int64_t until_ns = 0;
  std::uint64_t ticks = 0;

  void tick() {
    ++ticks;
    if (sim->now().ns() + step_ns > until_ns) return;
    sim->schedule_after(util::Duration::nanos(step_ns), [this] { tick(); });
  }
};

TEST(ShardedProperty, NoEventExecutesOutsideItsWindow) {
  sim::ShardedEngine::Options options;
  options.shards = 4;
  options.lookahead_ns = 5000;
  options.check_windows = true;
  // Fixed-lookahead windows on purpose: these chains are untagged (no
  // boundary events at all), so adaptive windows would legally collapse the
  // whole run into one window and containment would be tested vacuously.
  options.adaptive_windows = false;
  sim::ShardedEngine engine(options);
  engine.begin_setup();

  std::vector<Chain> chains(options.shards);
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    engine.begin_setup_segment(s);
    Chain& chain = chains[s];
    chain.sim = &engine.simulator(s);
    chain.step_ns = 1300 + 7 * s;  // never a multiple of the 5000ns window
    chain.until_ns = 2'000'000;
    chain.sim->schedule_at(util::SimTime::zero() +
                               util::Duration::nanos(100 + 13 * s),
                           [&chain] { chain.tick(); });
    engine.end_setup_segment();
  }

  engine.run_until(util::SimTime::zero() + util::Duration::millis(2));
  EXPECT_EQ(engine.window_violations(), 0u);
  EXPECT_GT(engine.windows_run(), 0u);
  std::uint64_t total_ticks = 0;
  for (const Chain& chain : chains) {
    EXPECT_GT(chain.ticks, 1000u);  // ~2ms / ~1.3us per tick
    total_ticks += chain.ticks;
  }
  EXPECT_EQ(engine.events_executed(), total_ticks);
  // No cross-shard traffic was offered, so the margin tracker is untouched.
  EXPECT_EQ(engine.min_foreign_margin_ns(),
            std::numeric_limits<std::int64_t>::max());
}

// -- fleet-level: conservative margins and merged-trace order ----------------

TEST(ShardedProperty, FleetForeignArrivalsRespectLookahead) {
  cluster::ShardedFleetConfig config;
  config.fleet.clusters = 4;
  config.fleet.nodes_per_cluster = 4;
  config.fleet.drs = chaos::fast_campaign_drs_config();
  config.shards = 4;
  config.check_windows = true;
  cluster::ShardedFleet fleet(config);
  fleet.start();
  // Exercise the oracle's failure path too: a relay blip plus a gateway
  // outage mid-run.
  fleet.schedule_component_failure(
      util::SimTime::zero() + util::Duration::millis(300),
      fleet.relay_backplane_component(), true);
  fleet.schedule_component_failure(
      util::SimTime::zero() + util::Duration::millis(450),
      fleet.relay_backplane_component(), false);
  fleet.schedule_component_failure(
      util::SimTime::zero() + util::Duration::millis(500),
      fleet.gateway_component(2), true);
  fleet.run_until(util::SimTime::zero() + util::Duration::millis(800));

  const sim::ShardedEngine& engine = fleet.engine();
  EXPECT_EQ(engine.window_violations(), 0u);
  EXPECT_GT(engine.windows_run(), 0u);
  // The gateway echo mesh guarantees cross-shard traffic; every arrival must
  // carry a non-negative margin against the earliest still-executable window.
  EXPECT_LT(engine.min_foreign_margin_ns(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_GE(engine.min_foreign_margin_ns(), 0);

  // gseq order refines time order: the merged stream is non-decreasing in
  // at_ns with no post-sort.
  const std::vector<obs::TraceEvent>& trace = fleet.merged_trace();
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i].at_ns, trace[i - 1].at_ns) << "at merged index " << i;
  }
}

TEST(ShardedProperty, RequiresHubRelayWithZeroJitter) {
  cluster::ShardedFleetConfig config;
  config.fleet.clusters = 2;
  config.fleet.nodes_per_cluster = 4;
  config.fleet.drs = chaos::fast_campaign_drs_config();
  config.fleet.relay_backplane.jitter = util::Duration::micros(1);
  EXPECT_THROW(cluster::ShardedFleet{config}, std::invalid_argument);
}

}  // namespace
}  // namespace drs
