// Time-domain availability: the MTBF/MTTR bridge to Equation 1 and its
// renewal-process Monte-Carlo validation.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/availability.hpp"
#include "analytic/survivability.hpp"
#include "montecarlo/time_availability.hpp"

namespace drs::analytic {
namespace {

TEST(Reliability, SteadyStateQ) {
  ComponentReliability r;
  r.mtbf_seconds = 99.0;
  r.mttr_seconds = 1.0;
  EXPECT_DOUBLE_EQ(r.steady_state_q(), 0.01);
  ComponentReliability always_broken;
  always_broken.mtbf_seconds = 1.0;
  always_broken.mttr_seconds = 1.0;
  EXPECT_DOUBLE_EQ(always_broken.steady_state_q(), 0.5);
}

TEST(PairAvailability, MatchesUnconditionalModel) {
  ComponentReliability r;
  r.mtbf_seconds = 1000.0;
  r.mttr_seconds = 10.0;
  EXPECT_DOUBLE_EQ(pair_availability(12, r),
                   p_success_unconditional(12, r.steady_state_q()));
}

TEST(PairAvailability, BetterHardwareBetterService) {
  ComponentReliability good, bad;
  good.mtbf_seconds = 1e6;
  good.mttr_seconds = 100.0;
  bad.mtbf_seconds = 1e4;
  bad.mttr_seconds = 100.0;
  EXPECT_GT(pair_availability(8, good), pair_availability(8, bad));
}

TEST(PairAvailability, DrsBeatsSingleNetworkBaseline) {
  // The redundancy argument: at any realistic q the dual-network DRS system
  // dominates a single-network system with the same component quality.
  for (double mtbf : {1e4, 1e5, 1e6}) {
    ComponentReliability r;
    r.mtbf_seconds = mtbf;
    r.mttr_seconds = 600.0;
    EXPECT_GT(pair_availability(8, r), single_network_pair_availability(r))
        << "mtbf=" << mtbf;
  }
}

TEST(PairAvailability, FaultToleranceGainIsQuadratic) {
  // With redundancy, pair unavailability should scale ~q^2 (two independent
  // things must break), vs ~3q for the single-network baseline.
  ComponentReliability r;
  r.mtbf_seconds = 1e6;
  r.mttr_seconds = 1e3;  // q ~ 1e-3
  const double q = r.steady_state_q();
  const double drs_unavail = 1.0 - pair_availability(16, r);
  const double single_unavail = 1.0 - single_network_pair_availability(r);
  EXPECT_LT(drs_unavail, 10 * q * q);       // ~ O(q^2)
  EXPECT_GT(single_unavail, 2.9 * q * 0.9); // ~ 3q
}

TEST(AnnualDowntime, ScalesWithUnavailability) {
  ComponentReliability r;
  r.mtbf_seconds = 30.0 * 24 * 3600;
  r.mttr_seconds = 4.0 * 3600;
  const util::Duration downtime = expected_annual_pair_downtime(10, r);
  EXPECT_GT(downtime, util::Duration::zero());
  // q ~ 0.0055; unavailability ~ O(q^2) ~ 3e-4 => well under a week.
  EXPECT_LT(downtime, util::Duration::seconds(7 * 24 * 3600));
  // And a perfect component never costs downtime.
  ComponentReliability perfect;
  perfect.mttr_seconds = 0.0;
  EXPECT_EQ(expected_annual_pair_downtime(10, perfect), util::Duration::zero());
}

// --- Renewal-process validation -------------------------------------------------

TEST(TimeAvailability, ConvergesToSteadyStateModel) {
  mc::TimeAvailabilityOptions options;
  options.nodes = 6;
  options.reliability.mtbf_seconds = 1000.0;
  options.reliability.mttr_seconds = 100.0;  // q ~ 0.0909: failures are common
  options.horizon_seconds = 4e6;
  options.sample_period_seconds = 40.0;
  const auto result = mc::simulate_time_availability(options);
  ASSERT_GT(result.samples, 50000u);
  const double expected = pair_availability(6, options.reliability);
  EXPECT_NEAR(result.availability, expected, 0.005)
      << "wilson [" << result.wilson95.lo << ", " << result.wilson95.hi << "]";
}

TEST(TimeAvailability, AnyDownFractionMatchesBinomial) {
  mc::TimeAvailabilityOptions options;
  options.nodes = 4;
  options.reliability.mtbf_seconds = 500.0;
  options.reliability.mttr_seconds = 50.0;
  options.horizon_seconds = 2e6;
  options.sample_period_seconds = 25.0;
  const auto result = mc::simulate_time_availability(options);
  const double q = options.reliability.steady_state_q();
  const double expected =
      1.0 - std::pow(1.0 - q, static_cast<double>(component_count(4)));
  EXPECT_NEAR(result.any_component_down, expected, 0.01);
}

TEST(TimeAvailability, DeterministicPerSeed) {
  mc::TimeAvailabilityOptions options;
  options.horizon_seconds = 1e5;
  // Failure-heavy components so the seed visibly matters within the horizon.
  options.reliability.mtbf_seconds = 300.0;
  options.reliability.mttr_seconds = 100.0;
  const auto a = mc::simulate_time_availability(options);
  const auto b = mc::simulate_time_availability(options);
  EXPECT_EQ(a.connected, b.connected);
  options.seed += 1;
  const auto c = mc::simulate_time_availability(options);
  EXPECT_NE(a.connected, c.connected);
}

TEST(TimeAvailability, PerfectComponentsAlwaysConnected) {
  mc::TimeAvailabilityOptions options;
  options.reliability.mtbf_seconds = 1e18;  // never fails within horizon
  options.horizon_seconds = 1e4;
  const auto result = mc::simulate_time_availability(options);
  EXPECT_EQ(result.connected, result.samples);
  EXPECT_DOUBLE_EQ(result.any_component_down, 0.0);
}

}  // namespace
}  // namespace drs::analytic
