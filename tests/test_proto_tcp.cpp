#include "proto/tcp_lite.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace drs::proto {
namespace {

using namespace drs::util::literals;

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : network(sim, {.node_count = 4, .backplane = {}}) {
    for (net::NodeId i = 0; i < 4; ++i) {
      services.push_back(std::make_unique<TcpService>(network.host(i)));
    }
  }

  TcpConnectionPtr accept_on(net::NodeId node, std::uint16_t port,
                             TcpConfig config = {}) {
    auto& slot = accepted_[node];
    services[node]->listen(port, [&slot](TcpConnectionPtr c) { slot = c; },
                           config);
    return nullptr;
  }

  sim::Simulator sim;
  net::ClusterNetwork network;
  std::vector<std::unique_ptr<TcpService>> services;
  std::map<net::NodeId, TcpConnectionPtr> accepted_;
};

TEST_F(TcpTest, HandshakeEstablishesBothSides) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  sim.run_for(100_ms);
  EXPECT_EQ(client->state(), TcpConnection::State::kEstablished);
  ASSERT_TRUE(accepted_[1]);
  EXPECT_EQ(accepted_[1]->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(client->peer(), net::cluster_ip(0, 1));
  EXPECT_EQ(client->peer_port(), 80);
}

TEST_F(TcpTest, ConnectToClosedPortResets) {
  auto client = services[0]->connect(net::cluster_ip(0, 1), 81);
  sim.run_for(100_ms);
  EXPECT_EQ(client->state(), TcpConnection::State::kReset);
}

TEST_F(TcpTest, BulkTransferDeliversEveryByteInOrder) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  sim.run_for(50_ms);
  std::uint64_t delivered = 0;
  bool monotone = true;
  accepted_[1]->on_receive = [&](std::uint64_t total) {
    monotone = monotone && total >= delivered;
    delivered = total;
  };
  client->offer(1'000'000);
  sim.run_for(2_s);
  EXPECT_EQ(delivered, 1'000'000u);
  EXPECT_TRUE(monotone);
  EXPECT_EQ(client->stats().bytes_acked, 1'000'000u);
  EXPECT_EQ(client->stats().retransmissions, 0u);  // clean network
}

TEST_F(TcpTest, OfferBeforeEstablishedIsBuffered) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  client->offer(5000);  // handshake not done yet
  sim.run_for(500_ms);
  ASSERT_TRUE(accepted_[1]);
  EXPECT_EQ(accepted_[1]->stats().bytes_delivered, 5000u);
}

TEST_F(TcpTest, CloseCompletesAfterDrain) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  client->offer(10'000);
  client->close();
  sim.run_for(2_s);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(accepted_[1]->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(accepted_[1]->stats().bytes_delivered, 10'000u);
}

TEST_F(TcpTest, SurvivesTransientBackplaneOutageViaRetransmit) {
  accept_on(1, 80, TcpConfig{});
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  sim.run_for(50_ms);
  client->offer(500'000);
  // Cut the only path mid-transfer for 600 ms, then restore (no DRS here —
  // this exercises pure TCP recovery through its own retransmission).
  sim.schedule_after(5_ms, [&] { network.backplane(0).set_failed(true); });
  sim.schedule_after(605_ms, [&] { network.backplane(0).set_failed(false); });
  sim.run_for(10_s);
  EXPECT_EQ(client->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(accepted_[1]->stats().bytes_delivered, 500'000u);
  EXPECT_GT(client->stats().retransmissions, 0u);
  EXPECT_GT(accepted_[1]->stats().max_delivery_gap, 500_ms);
}

TEST_F(TcpTest, PermanentOutageExhaustsRetriesAndResets) {
  TcpConfig config;
  config.max_retries = 4;
  config.initial_rto = 50_ms;
  config.max_rto = 500_ms;
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80, config);
  sim.run_for(50_ms);
  network.backplane(0).set_failed(true);  // cut first, then offer data
  client->offer(10'000);
  sim.run_for(30_s);
  EXPECT_EQ(client->state(), TcpConnection::State::kReset);
}

TEST_F(TcpTest, FinSurvivesGoBackNTrim) {
  // Regression: data + FIN in flight when an outage forces go-back-N. The
  // RTO trim discards the queued FIN; it must be re-marked unsent so pump()
  // re-emits it after the data is recovered — otherwise the connection
  // deadlocks in FIN_WAIT with no timer armed.
  accept_on(1, 80);
  TcpConfig config;
  config.max_rto = 1_s;
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80, config);
  sim.run_for(50_ms);
  client->offer(50'000);
  client->close();
  // Cut immediately so data segments AND the FIN are outstanding together.
  network.backplane(0).set_failed(true);
  sim.run_for(1_s);  // several RTO firings trim the in-flight tail
  network.backplane(0).set_failed(false);
  sim.run_for(30_s);
  EXPECT_EQ(client->state(), TcpConnection::State::kClosed);
  EXPECT_EQ(accepted_[1]->stats().bytes_delivered, 50'000u);
}

TEST_F(TcpTest, RtoBacksOffExponentially) {
  TcpConfig config;
  config.initial_rto = 100_ms;
  config.max_retries = 10;
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80, config);
  sim.run_for(50_ms);
  network.backplane(0).set_failed(true);
  client->offer(100);
  sim.run_for(3_s);
  // RTO fired several times; the current RTO should have grown well beyond
  // the base (100 -> 200 -> 400 -> ...).
  EXPECT_GE(client->stats().rto_firings, 3u);
  EXPECT_GE(client->stats().current_rto, 400_ms);
}

TEST_F(TcpTest, SrttConvergesToPathRtt) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  client->offer(200'000);
  sim.run_for(5_s);
  // Path RTT is tens of microseconds (serialization + propagation); SRTT
  // must be positive and well under a millisecond.
  EXPECT_GT(client->stats().srtt_seconds, 0.0);
  EXPECT_LT(client->stats().srtt_seconds, 1e-3);
}

TEST_F(TcpTest, TwoConnectionsAreIndependent) {
  accept_on(1, 80);
  auto client_a = services[0]->connect(net::cluster_ip(0, 1), 80);
  sim.run_for(10_ms);
  auto first_accept = accepted_[1];
  auto client_b = services[2]->connect(net::cluster_ip(0, 1), 80);
  sim.run_for(10_ms);
  auto second_accept = accepted_[1];
  ASSERT_NE(first_accept, second_accept);
  client_a->offer(1000);
  client_b->offer(2000);
  sim.run_for(1_s);
  EXPECT_EQ(first_accept->stats().bytes_delivered, 1000u);
  EXPECT_EQ(second_accept->stats().bytes_delivered, 2000u);
}

TEST_F(TcpTest, StateChangeCallbackFires) {
  accept_on(1, 80);
  auto client = services[0]->connect(net::cluster_ip(0, 1), 80);
  std::vector<TcpConnection::State> states;
  client->on_state_change = [&](TcpConnection::State s) { states.push_back(s); };
  client->offer(100);
  client->close();
  sim.run_for(1_s);
  ASSERT_GE(states.size(), 2u);
  EXPECT_EQ(states.front(), TcpConnection::State::kEstablished);
  EXPECT_EQ(states.back(), TcpConnection::State::kClosed);
}

TEST(TcpSegmentPayload, DescribeAndWireSize) {
  TcpSegment segment;
  segment.src_port = 10;
  segment.dst_port = 20;
  segment.syn = true;
  segment.data_bytes = 100;
  EXPECT_EQ(segment.wire_size(), 120u);
  EXPECT_NE(segment.describe().find("SYN"), std::string::npos);
}

}  // namespace
}  // namespace drs::proto
