// Overhead regression for the compile-time kill switch.
//
// This translation unit is built with -DDRS_OBS_DISABLED (see
// tests/CMakeLists.txt): DRS_TRACE_EVENT must expand to nothing (its
// arguments never evaluated), snapshot_metrics must leave the registry
// untouched, and a full paper-scale run — the Fig. 1 anchor, N = 90 — must
// not allocate a single trace ring. The linked libraries are built normally;
// what this proves is the per-TU contract a hot downstream component relies
// on when it opts out.
#include <gtest/gtest.h>

#ifndef DRS_OBS_DISABLED
#error "test_obs_compiled_out must be compiled with -DDRS_OBS_DISABLED"
#endif

#include "core/system.hpp"
#include "net/network.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace drs {
namespace {

static_assert(DRS_OBS_ENABLED == 0,
              "DRS_OBS_DISABLED must zero the feature-test macro");

TEST(CompiledOut, MacroEmitsNothingAndEvaluatesNoArguments) {
  obs::Tracer tracer(8);
  int evaluations = 0;
  const auto tracer_expr = [&]() {
    ++evaluations;
    return &tracer;
  };
  DRS_TRACE_EVENT(tracer_expr(), .at_ns = 1,
                  .kind = obs::TraceEventKind::kPingSent);
  (void)tracer_expr;  // referenced only inside the compiled-out macro
  EXPECT_EQ(evaluations, 0) << "disabled macro must not evaluate arguments";
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(CompiledOut, SnapshotMetricsIsGatedOff) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 3, .backplane = {}});
  core::DrsSystem system(network, core::DrsConfig{});
  system.start();
  sim.run_for(util::Duration::millis(300));
  system.stop();
  obs::MetricRegistry registry;
  core::snapshot_metrics(system, registry);
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(CompiledOut, PaperScaleRunAllocatesZeroTraceBuffers) {
  const std::uint64_t before = obs::Tracer::rings_allocated();
  // The Fig. 1 headline configuration: ninety hosts, full-mesh monitoring.
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 90, .backplane = {}});
  core::DrsSystem system(network, core::DrsConfig{});
  system.start();
  sim.run_for(util::Duration::millis(250));  // > 2 full probe cycles
  obs::MetricRegistry registry;
  core::snapshot_metrics(system, registry);
  system.stop();
  EXPECT_GT(system.total_probes_sent(), 0u) << "the cluster really ran";
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(obs::Tracer::rings_allocated(), before)
      << "a run without a tracer must not allocate ring storage";
}

}  // namespace
}  // namespace drs
