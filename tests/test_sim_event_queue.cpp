#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace drs::sim {
namespace {

using util::SimTime;

SimTime at(std::int64_t ns) { return SimTime::from_ns(ns); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at(30), [&] { order.push_back(3); });
  q.push(at(10), [&] { order.push_back(1); });
  q.push(at(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    q.push(at(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(at(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(at(10), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownOrInvalidFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, InvalidIdIsNeverPendingOrCancellable) {
  // Regression: kInvalidEventId (0) is the "never scheduled" sentinel used
  // by default-constructed EventHandles. It must stay inert no matter what
  // the queue holds — in particular it must not alias slot 0 of the slot
  // table, which a real event occupies below.
  EventQueue q;
  EXPECT_FALSE(q.is_pending(kInvalidEventId));
  EXPECT_FALSE(q.cancel(kInvalidEventId));

  const EventId id = q.push(at(10), [] {});
  ASSERT_NE(id, kInvalidEventId);
  EXPECT_FALSE(q.is_pending(kInvalidEventId));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_TRUE(q.is_pending(id));
  EXPECT_EQ(q.size(), 1u);

  q.pop();
  EXPECT_FALSE(q.is_pending(kInvalidEventId));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TEST(EventQueue, CancelExecutedFails) {
  EventQueue q;
  const EventId id = q.push(at(10), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(at(1), [] {});
  q.push(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId a = q.push(at(5), [] {});
  q.push(at(9), [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), at(9));
}

TEST(EventQueue, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, IsPendingLifecycle) {
  EventQueue q;
  const EventId id = q.push(at(1), [] {});
  EXPECT_TRUE(q.is_pending(id));
  q.pop();
  EXPECT_FALSE(q.is_pending(id));
}

TEST(EventQueue, RandomizedOrderingProperty) {
  // Push events with random times, pop everything: output must be sorted by
  // (time, insertion order).
  util::Rng rng(99);
  EventQueue q;
  struct Tag {
    std::int64_t time;
    std::uint64_t seq;
  };
  std::vector<Tag> popped;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::int64_t t = rng.next_int(0, 50);
    q.push(at(t), [&popped, t, i] { popped.push_back({t, i}); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(popped.size(), 2000u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    const bool ordered = popped[i - 1].time < popped[i].time ||
                         (popped[i - 1].time == popped[i].time &&
                          popped[i - 1].seq < popped[i].seq);
    ASSERT_TRUE(ordered) << "at index " << i;
  }
}

TEST(EventQueue, RandomizedCancellationProperty) {
  util::Rng rng(101);
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<bool> cancelled(3000, false);
  int expected_runs = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    ids.push_back(q.push(at(rng.next_int(0, 100)), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.next_bernoulli(0.5)) {
      EXPECT_TRUE(q.cancel(ids[i]));
      cancelled[i] = true;
    } else {
      ++expected_runs;
    }
  }
  int runs = 0;
  while (!q.empty()) {
    q.pop();
    ++runs;
  }
  EXPECT_EQ(runs, expected_runs);
}

}  // namespace
}  // namespace drs::sim
