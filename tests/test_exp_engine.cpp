// The experiment engine: grid expansion, cache-key contract, bit-identical
// warm-vs-cold JSON, selective invalidation, thread invariance, and the
// sharded-writers race (run this binary under DRS_SANITIZE=thread).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/engine.hpp"
#include "util/parallel.hpp"

namespace {

using namespace drs;

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("drs-exp-test-") + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir.string();
}

// --- spec / grid ------------------------------------------------------------

TEST(ParamGrid, ExpandsLastAxisFastest) {
  exp::ParamGrid grid;
  grid.ints("n", {4, 6}).ints("f", {1, 2, 3});
  EXPECT_EQ(grid.cell_count(), 6u);
  const auto cells = exp::expand(grid);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].canonical(), "n=i:4|f=i:1");
  EXPECT_EQ(cells[1].canonical(), "n=i:4|f=i:2");
  EXPECT_EQ(cells[3].canonical(), "n=i:6|f=i:1");
  EXPECT_EQ(cells[5].canonical(), "n=i:6|f=i:3");
}

TEST(ParamGrid, ParsesSweepSyntax) {
  std::string error;
  const auto grid =
      exp::parse_grid("n=2,4;f=2..5;relay=true,false;mode=hub,switch", &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->axes().size(), 4u);
  EXPECT_EQ(grid->cell_count(), 2u * 4u * 2u * 2u);
  const auto cells = exp::expand(*grid);
  EXPECT_EQ(cells[0].get_int("f", -1), 2);
  EXPECT_EQ(cells[0].get_bool("relay", false), true);
  EXPECT_EQ(cells[0].get_string("mode", ""), "hub");
}

TEST(ParamGrid, ParsesRangesWithStep) {
  std::string error;
  const auto grid = exp::parse_grid("iters=10..50:20", &error);
  ASSERT_TRUE(grid.has_value()) << error;
  const auto cells = exp::expand(*grid);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[2].get_int("iters", 0), 50);
}

TEST(ParamGrid, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(exp::parse_grid("", &error).has_value());
  EXPECT_FALSE(exp::parse_grid("noequals", &error).has_value());
  EXPECT_FALSE(exp::parse_grid("n=1;n=2", &error).has_value());
  EXPECT_FALSE(exp::parse_grid("n=5..2", &error).has_value());
  EXPECT_FALSE(exp::parse_grid("n=", &error).has_value());
}

TEST(Spec, ConfigFingerprintCoversEveryKnob) {
  // Pin the default fingerprint: adding a DrsConfig knob without extending
  // config_fingerprint would silently keep stale cache entries alive. If this
  // fails because you added a knob, extend config_fingerprint AND bump its
  // version prefix.
  const std::string fp = exp::config_fingerprint(core::DrsConfig{});
  EXPECT_EQ(fp,
            "drs-config-v1|probe_interval=100000000|probe_timeout=40000000"
            "|adaptive_timeout=0|min_probe_timeout=2000000|failures_to_down=2"
            "|successes_to_up=1|spread_probes=1|probe_data_bytes=0"
            "|allow_relay=1|discover_timeout=50000000|warm_standby=0"
            "|relay_route_lifetime=2000000000|flap_threshold=0"
            "|flap_window=10000000000|flap_hold=5000000000"
            "|monitored_peers=all");
  core::DrsConfig other;
  other.allow_relay = false;
  EXPECT_NE(exp::config_fingerprint(other), fp);
}

// --- cache-key contract -----------------------------------------------------

TEST(CacheKey, SeedOnlyAffectsSeededFamilies) {
  exp::ExperimentSpec spec;
  spec.grid.ints("n", {8}).ints("f", {3});
  const auto cell = exp::expand(spec.grid).front();

  const exp::Scenario* analytic = exp::find_scenario("fig2_psuccess");
  const exp::Scenario* seeded = exp::find_scenario("mc_estimate");
  ASSERT_NE(analytic, nullptr);
  ASSERT_NE(seeded, nullptr);

  spec.seed = 1;
  const std::string analytic_1 = exp::cell_cache_key(spec, *analytic, cell);
  const std::string seeded_1 = exp::cell_cache_key(spec, *seeded, cell);
  spec.seed = 2;
  EXPECT_EQ(exp::cell_cache_key(spec, *analytic, cell), analytic_1)
      << "a purely analytic family's cache must survive a seed change";
  EXPECT_NE(exp::cell_cache_key(spec, *seeded, cell), seeded_1);
}

TEST(CacheKey, ConfigOnlyAffectsConfigFamilies) {
  exp::ExperimentSpec spec;
  spec.grid.ints("n", {6}).ints("f", {2});
  const auto cell = exp::expand(spec.grid).front();
  const exp::Scenario* analytic = exp::find_scenario("fig2_psuccess");
  const exp::Scenario* config_family = exp::find_scenario("ablation_relay");
  ASSERT_NE(config_family, nullptr);

  const std::string a1 = exp::cell_cache_key(spec, *analytic, cell);
  const std::string c1 = exp::cell_cache_key(spec, *config_family, cell);
  spec.config = core::DrsConfig{};
  spec.config->probe_interval = util::Duration::millis(50);
  EXPECT_EQ(exp::cell_cache_key(spec, *analytic, cell), a1);
  EXPECT_NE(exp::cell_cache_key(spec, *config_family, cell), c1);
}

TEST(Outputs, SerializeParseRoundTripsBitExactly) {
  exp::Outputs outputs;
  outputs.emplace_back("count", std::int64_t{42});
  outputs.emplace_back("p", 0.1 + 0.2);  // not representable exactly
  outputs.emplace_back("ok", true);
  outputs.emplace_back("label", std::string("hub"));
  exp::Outputs back;
  ASSERT_TRUE(exp::parse_outputs(exp::serialize_outputs(outputs), back));
  ASSERT_EQ(back.size(), outputs.size());
  EXPECT_EQ(back[0], outputs[0]);
  EXPECT_EQ(back[1], outputs[1]);  // bit-exact double
  EXPECT_EQ(back[2], outputs[2]);
  EXPECT_EQ(back[3], outputs[3]);
  exp::Outputs bad;
  EXPECT_FALSE(exp::parse_outputs("no-equals-sign\n", bad));
  EXPECT_FALSE(exp::parse_outputs("x=q:unknown-tag\n", bad));
  EXPECT_FALSE(exp::parse_outputs("unterminated=i:1", bad));
}

// --- engine runs ------------------------------------------------------------

exp::ExperimentSpec small_spec() {
  exp::ExperimentSpec spec;
  spec.family = "fig2_psuccess";
  spec.grid.ints("n", {4, 6, 8}).ints("f", {2, 3});
  return spec;
}

TEST(Engine, RejectsUnknownFamilyAndMissingAxes) {
  exp::ExperimentSpec spec;
  spec.family = "no_such_family";
  spec.grid.ints("n", {4});
  EXPECT_FALSE(exp::run_experiment(spec).ok());

  exp::ExperimentSpec missing;
  missing.family = "fig2_psuccess";
  missing.grid.ints("n", {4});  // required axis f absent
  const auto result = exp::run_experiment(missing);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("'f'"), std::string::npos);
}

TEST(Engine, RejectsInvalidSpecConfig) {
  exp::ExperimentSpec spec;
  spec.family = "ablation_relay";
  spec.grid.ints("f", {2}).bools("relay", {true});
  spec.config = core::DrsConfig{};
  spec.config->probe_timeout = spec.config->probe_interval;  // invalid
  const auto result = exp::run_experiment(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("probe_timeout"), std::string::npos);
}

TEST(Engine, WarmRunIsBitIdenticalToColdRun) {
  const std::string dir = temp_dir("warm");
  exp::EngineOptions options;
  options.cache_dir = dir;

  const auto cold = exp::run_experiment(small_spec(), options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 6u);

  const auto warm = exp::run_experiment(small_spec(), options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache_hits, 6u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.to_json(), cold.to_json()) << "hit must be indistinguishable";
  EXPECT_EQ(warm.to_table().to_csv(), cold.to_table().to_csv());

  // An uncached run agrees too.
  const auto uncached = exp::run_experiment(small_spec());
  EXPECT_EQ(uncached.to_json(), cold.to_json());
  std::filesystem::remove_all(dir);
}

TEST(Engine, EditingOneKnobInvalidatesExactlyAffectedCells) {
  const std::string dir = temp_dir("invalidate");
  exp::EngineOptions options;
  options.cache_dir = dir;
  ASSERT_TRUE(exp::run_experiment(small_spec(), options).ok());

  // n: {4,6,8} -> {4,6,10}: the four (4,*) and (6,*) cells stay cached, the
  // two (10,*) cells are fresh.
  exp::ExperimentSpec edited;
  edited.family = "fig2_psuccess";
  edited.grid.ints("n", {4, 6, 10}).ints("f", {2, 3});
  const auto result = exp::run_experiment(edited, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.cache_hits, 4u);
  EXPECT_EQ(result.cache_misses, 2u);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const bool fresh = result.cells[i].get_int("n", 0) == 10;
    EXPECT_EQ(result.results[i].from_cache, !fresh);
  }
  std::filesystem::remove_all(dir);
}

TEST(Engine, RefreshRecomputesEverything) {
  const std::string dir = temp_dir("refresh");
  exp::EngineOptions options;
  options.cache_dir = dir;
  ASSERT_TRUE(exp::run_experiment(small_spec(), options).ok());
  options.refresh = true;
  const auto result = exp::run_experiment(small_spec(), options);
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_EQ(result.cache_misses, 6u);
  std::filesystem::remove_all(dir);
}

TEST(Engine, OutputIsInvariantToThreadCount) {
  exp::ExperimentSpec spec;
  spec.family = "mc_estimate";
  spec.grid.ints("n", {6, 8, 10, 12}).ints("f", {2, 3}).ints("iterations",
                                                             {200});
  exp::EngineOptions one;
  one.threads = 1;
  exp::EngineOptions many;
  many.threads = 8;
  const auto a = exp::run_experiment(spec, one);
  const auto b = exp::run_experiment(spec, many);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Engine, ConcurrentShardedWritersShareOneCacheSafely) {
  // Two engines race the same grid into the same cache directory on many
  // threads. Under DRS_SANITIZE=thread this is the sharded-writers race; the
  // results must be correct and complete either way.
  const std::string dir = temp_dir("sharedrace");
  exp::ExperimentSpec spec;
  spec.family = "fig2_psuccess";
  std::vector<std::int64_t> ns;
  for (std::int64_t n = 4; n <= 24; ++n) ns.push_back(n);
  spec.grid.ints("n", ns).ints("f", {2, 3});

  const auto reference = exp::run_experiment(spec);
  const auto runs = util::run_indexed_jobs(2, 2, [&](std::uint64_t) {
    exp::EngineOptions options;
    options.cache_dir = dir;
    options.threads = 4;
    return exp::run_experiment(spec, options);
  });
  for (const auto& run : runs) {
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.to_json(), reference.to_json());
  }
  std::filesystem::remove_all(dir);
}

TEST(Engine, JsonReportAndSummaryLine) {
  const auto result = exp::run_experiment(small_spec());
  ASSERT_TRUE(result.ok());
  exp::JsonReport report;
  report.add(result);
  report.add(result);
  const std::string doc = report.str();
  EXPECT_EQ(doc.front(), '[');
  EXPECT_EQ(doc.back(), ']');
  EXPECT_NE(doc.find("\"family\":\"fig2_psuccess\""), std::string::npos);
  const std::string line = exp::summary_line(result);
  EXPECT_NE(line.find("family=fig2_psuccess"), std::string::npos);
  EXPECT_NE(line.find("cells=6"), std::string::npos);
  EXPECT_NE(line.find("hit_rate=0"), std::string::npos);
}

TEST(Engine, EveryRegisteredFamilyRunsItsSmallestCell) {
  // Smoke-run each family on a tiny grid so a scenario that stops compiling
  // against its model is caught here, not in a long bench run.
  for (const exp::Scenario& s : exp::scenarios()) {
    exp::ExperimentSpec spec;
    spec.family = s.family;
    for (const std::string& axis : s.required) {
      if (axis == "n") {
        spec.grid.ints("n", {4});
      } else if (axis == "f") {
        spec.grid.ints("f", {2});
      } else if (axis == "budget" || axis == "q") {
        spec.grid.doubles(axis, {0.1});
      } else if (axis == "deadline" || axis == "target") {
        spec.grid.doubles(axis, {1.0});
      } else if (axis == "iterations" || axis == "samples") {
        spec.grid.ints(axis, {10});
      } else if (axis == "threshold") {
        spec.grid.ints(axis, {2});
      } else if (axis == "relay" || axis == "spread" || axis == "warm") {
        spec.grid.bools(axis, {true});
      } else if (axis == "clusters") {
        spec.grid.ints("clusters", {2});
      } else {
        FAIL() << "family " << s.family << " requires unknown axis '" << axis
               << "' — teach this test how to fill it";
      }
    }
    // Shrink the slow packet-level families.
    if (!spec.grid.has_axis("samples") &&
        (s.family == "ablation_relay" ||
         s.family == "ablation_packet_agreement")) {
      spec.grid.ints("samples", {2});
    }
    if (s.family == "ablation_spread") spec.grid.ints("run_ms", {50});
    if (s.family == "ablation_detector") spec.grid.ints("interval_ms", {50});
    if (s.family == "fig1_measured") spec.grid.ints("cycles", {1});
    if (s.family == "fig3_convergence") spec.grid.ints("n_limit", {8});
    const auto result = exp::run_experiment(spec);
    EXPECT_TRUE(result.ok()) << s.family << ": " << result.error;
    ASSERT_FALSE(result.results.empty()) << s.family;
    EXPECT_FALSE(result.results.front().outputs.empty()) << s.family;
  }
}

}  // namespace
