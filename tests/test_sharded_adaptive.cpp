// The adaptive-lookahead (earliest-output-time) window protocol and the
// counter-equal fast lane, tested where the differential corpus cannot see:
//   - coalescing invariance: adaptive windows change ONLY the window count —
//     the merged trace and semantic metrics are byte-identical to the
//     fixed-lookahead protocol, while the window count shrinks >= 5x;
//   - counter-equal contract: with the journal and merge elided, event
//     counts, probe totals, semantic metric snapshots and invariant outcomes
//     still equal the legacy single-queue run at every shard count (and no
//     merged trace is produced);
//   - counter-equal refuses lossy relays (the loss RNG draw order is only
//     certified under the journaled merge);
//   - window spans: recorded spans tile the run (monotone, non-overlapping),
//     account for every executed event, and export to Chrome trace format.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "chaos/campaign.hpp"
#include "cluster/fleet.hpp"
#include "cluster/partition.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace drs {
namespace {

util::SimTime at_ms(std::int64_t ms) {
  return util::SimTime::zero() + util::Duration::millis(ms);
}

cluster::FleetConfig fleet_config(std::uint16_t clusters,
                                  std::uint16_t nodes) {
  cluster::FleetConfig config;
  config.clusters = clusters;
  config.nodes_per_cluster = nodes;
  config.drs = chaos::fast_campaign_drs_config();
  return config;
}

/// A fleet run that exercises the oracle's whole surface: relay blip,
/// gateway outage with recovery, healthy tail.
struct FleetRun {
  std::string trace_json;
  std::string semantic_metrics;  // cluster./gateway./relay./fleet. only
  std::uint64_t probes_sent = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t windows_run = 0;
  std::uint64_t windows_coalesced = 0;
  bool pristine = true;
};

// Keeps only the semantic metric families every execution mode must agree
// on; per-queue (sim./arena./shard.) and engine diagnostics are mode-local.
std::string semantic_only(std::string json) {
  for (const char* prefix : {"\"sim.", "\"arena.", "\"shard.", "\"engine."}) {
    std::size_t pos;
    while ((pos = json.find(prefix)) != std::string::npos) {
      const std::size_t colon = json.find(':', pos);
      if (colon == std::string::npos) break;
      const std::size_t end = json.find_first_of(",}", colon);
      if (end == std::string::npos) break;
      if (json[end] == ',') {
        json.erase(pos, end - pos + 1);
      } else {
        std::size_t begin = pos;
        if (begin > 0 && json[begin - 1] == ',') --begin;
        json.erase(begin, end - begin);
      }
    }
  }
  return json;
}

void schedule_mixed_outages(cluster::ShardedFleet& fleet) {
  fleet.schedule_component_failure(at_ms(120),
                                   fleet.relay_backplane_component(), true);
  fleet.schedule_component_failure(at_ms(180),
                                   fleet.relay_backplane_component(), false);
  fleet.schedule_component_failure(at_ms(250), fleet.gateway_component(1),
                                   true);
  fleet.schedule_component_failure(at_ms(400), fleet.gateway_component(1),
                                   false);
}

FleetRun run_fleet(std::uint32_t shards, sim::Ordering ordering,
                   bool adaptive) {
  cluster::ShardedFleetConfig config;
  config.fleet = fleet_config(4, 4);
  config.shards = shards;
  config.trace_capacity = std::size_t{1} << 16;
  config.check_windows = true;
  config.ordering = ordering;
  config.adaptive_windows = adaptive;
  cluster::ShardedFleet fleet(config);
  fleet.start();
  schedule_mixed_outages(fleet);
  fleet.run_until(at_ms(600));

  EXPECT_EQ(fleet.engine().window_violations(), 0u);
  EXPECT_GE(fleet.engine().min_foreign_margin_ns(), 0);

  FleetRun run;
  run.trace_json = obs::to_canonical_json(fleet.merged_trace());
  obs::MetricRegistry registry;
  fleet.collect_metrics(registry);
  run.semantic_metrics = semantic_only(registry.to_json());
  run.probes_sent = fleet.total_probes_sent();
  run.executed_events = fleet.engine().events_executed();
  run.windows_run = fleet.engine().windows_run();
  run.windows_coalesced = fleet.engine().windows_coalesced();
  run.pristine = fleet.all_pristine();
  return run;
}

// -- coalescing invariance ----------------------------------------------------

TEST(ShardedAdaptive, CoalescingChangesOnlyTheWindowCount) {
  const FleetRun fixed =
      run_fleet(4, sim::Ordering::kCertified, /*adaptive=*/false);
  const FleetRun adaptive =
      run_fleet(4, sim::Ordering::kCertified, /*adaptive=*/true);

  // Identical observable output...
  EXPECT_EQ(fixed.trace_json, adaptive.trace_json);
  EXPECT_EQ(fixed.semantic_metrics, adaptive.semantic_metrics);
  EXPECT_EQ(fixed.probes_sent, adaptive.probes_sent);
  EXPECT_EQ(fixed.executed_events, adaptive.executed_events);
  EXPECT_EQ(fixed.pristine, adaptive.pristine);

  // ...from far fewer synchronization windows. The acceptance bar is 5x;
  // the probe cadence (100 ms) vs the 5 us lookahead makes the real ratio
  // orders of magnitude larger on idle stretches.
  EXPECT_EQ(fixed.windows_coalesced, 0u);
  EXPECT_GT(adaptive.windows_coalesced, 0u);
  ASSERT_GT(adaptive.windows_run, 0u);
  EXPECT_GE(fixed.windows_run, 5u * adaptive.windows_run)
      << "fixed " << fixed.windows_run << " vs adaptive "
      << adaptive.windows_run;
}

TEST(ShardedAdaptive, MaxWindowCapBoundsWindowWidth) {
  // Windows start at the next pending event (idle gaps are skipped), so the
  // cap bounds each window's WIDTH, not the window count per unit sim-time.
  const std::int64_t cap_ns = util::Duration::millis(1).ns();
  auto run = [&](std::int64_t max_window_ns) {
    cluster::ShardedFleetConfig config;
    config.fleet = fleet_config(2, 4);
    config.shards = 2;
    config.check_windows = true;
    config.record_window_spans = true;
    config.max_window_ns = max_window_ns;
    cluster::ShardedFleet fleet(config);
    fleet.start();
    fleet.run_until(at_ms(50));
    EXPECT_EQ(fleet.engine().window_violations(), 0u);
    std::int64_t widest = 0;
    for (const obs::WindowSpan& span : fleet.engine().window_spans()) {
      widest = std::max(widest, span.end_ns - span.start_ns);
    }
    return std::pair<std::uint64_t, std::int64_t>{
        fleet.engine().windows_run(), widest};
  };

  const auto [uncapped_windows, uncapped_widest] = run(0);
  const auto [capped_windows, capped_widest] = run(cap_ns);
  // The uncapped adaptive run coalesces past the cap (otherwise the cap is
  // not exercised); the capped run never exceeds it, at the cost of extra
  // windows.
  EXPECT_GT(uncapped_widest, cap_ns);
  EXPECT_LE(capped_widest, cap_ns);
  EXPECT_GT(capped_windows, uncapped_windows);
}

// -- the counter-equal fast lane ---------------------------------------------

TEST(ShardedAdaptive, CounterEqualMatchesLegacyTotals) {
  // Legacy oracle run (single simulator, untraced — counter-equal runs
  // produce no trace, so totals are the whole comparison surface).
  cluster::FleetConfig legacy_config = fleet_config(4, 4);
  sim::Simulator sim;
  cluster::Fleet legacy(sim, legacy_config);
  legacy.start();
  struct Action {
    util::SimTime at;
    net::ComponentIndex component;
    bool fail;
  };
  const net::ComponentIndex relay = legacy.relay_backplane_component();
  const net::ComponentIndex gateway1 = legacy.gateway_component(1);
  for (const Action& action :
       {Action{at_ms(120), relay, true}, Action{at_ms(180), relay, false},
        Action{at_ms(250), gateway1, true},
        Action{at_ms(400), gateway1, false}}) {
    cluster::Fleet* target = &legacy;
    sim.schedule_at(action.at, [target, action] {
      target->set_component_failed(action.component, action.fail);
    });
  }
  sim.run_until(at_ms(600));
  obs::MetricRegistry legacy_registry;
  legacy.collect_metrics(legacy_registry);
  const std::string legacy_metrics =
      semantic_only(legacy_registry.to_json());

  // Event-count reference: a certified sharded run, not the legacy one —
  // relay transitions are oracle-owned shared state in sharded mode (no
  // shard event), so the sharded total is legacy minus the relay injections
  // regardless of ordering mode.
  const FleetRun certified =
      run_fleet(2, sim::Ordering::kCertified, /*adaptive=*/true);

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    cluster::ShardedFleetConfig config;
    config.fleet = fleet_config(4, 4);
    config.shards = shards;
    config.ordering = sim::Ordering::kCounterEqual;
    config.check_windows = true;
    cluster::ShardedFleet fleet(config);
    fleet.start();
    schedule_mixed_outages(fleet);
    fleet.run_until(at_ms(600));

    EXPECT_EQ(fleet.engine().window_violations(), 0u);
    EXPECT_GE(fleet.engine().min_foreign_margin_ns(), 0);
    // The contract: counts and totals, not traces.
    EXPECT_TRUE(fleet.merged_trace().empty());
    EXPECT_EQ(fleet.engine().events_executed(), certified.executed_events);
    EXPECT_EQ(fleet.total_probes_sent(), legacy.total_probes_sent());
    EXPECT_EQ(fleet.all_pristine(), legacy.all_pristine());
    obs::MetricRegistry registry;
    fleet.collect_metrics(registry);
    EXPECT_EQ(semantic_only(registry.to_json()), legacy_metrics);
  }
}

TEST(ShardedAdaptive, CounterEqualRefusesLossyRelay) {
  cluster::ShardedFleetConfig config;
  config.fleet = fleet_config(2, 4);
  config.fleet.relay_backplane.frame_loss_rate = 0.01;
  config.ordering = sim::Ordering::kCounterEqual;
  EXPECT_THROW(cluster::ShardedFleet{config}, std::invalid_argument);
}

// -- window spans -------------------------------------------------------------

TEST(ShardedAdaptive, WindowSpansTileTheRunAndExport) {
  cluster::ShardedFleetConfig config;
  config.fleet = fleet_config(3, 4);
  config.shards = 3;
  config.record_window_spans = true;
  cluster::ShardedFleet fleet(config);
  fleet.start();
  fleet.run_until(at_ms(400));

  const std::vector<obs::WindowSpan>& spans = fleet.engine().window_spans();
  ASSERT_EQ(spans.size(), fleet.engine().windows_run());
  ASSERT_FALSE(spans.empty());
  std::uint64_t events = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].start_ns, spans[i].end_ns) << "span " << i;
    if (i > 0) {
      EXPECT_GE(spans[i].start_ns, spans[i - 1].end_ns)
          << "overlapping windows at span " << i;
    }
    EXPECT_LE(spans[i].active_shards, 3u);
    events += spans[i].events;
  }
  // Every executed event belongs to exactly one window.
  EXPECT_EQ(events, fleet.engine().events_executed());

  const std::string chrome =
      obs::to_chrome_trace_json(fleet.merged_trace(), spans);
  EXPECT_NE(chrome.find("\"window\""), std::string::npos);
  EXPECT_NE(chrome.find("\"active_shards\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace drs
