// Property suite for the precomputed policies' backup sequences.
//
// The central claim (Chiesa-style static resilience): for every ordered
// observer pair, walking the precomputed arc sequence under a failure set is
// loop-free and delivers exactly when the failed topology still admits any
// path — no reconvergence, no coordination. The failure sets are every
// single- and double-component failure drawn from 50 seeded chaos schedules,
// checked against a brute-force reachability oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chaos/schedule.hpp"
#include "net/network.hpp"
#include "policy/alternate_path.hpp"
#include "policy/backup_sequences.hpp"
#include "sim/simulator.hpp"

namespace drs::policy {
namespace {

using namespace drs::util::literals;

constexpr std::uint16_t kNodeCount = 8;

bool contains(const std::vector<net::ComponentIndex>& sorted,
              net::ComponentIndex component) {
  return std::binary_search(sorted.begin(), sorted.end(), component);
}

/// Ground truth: the direct link a -> b over network k survives `failed`
/// (both NICs and the shared backplane).
bool oracle_link_up(net::NodeId a, net::NodeId b, net::NetworkId network,
                    const std::vector<net::ComponentIndex>& failed) {
  const auto backplane =
      static_cast<net::ComponentIndex>(2u * kNodeCount + network);
  return !contains(failed, backplane) &&
         !contains(failed, net::ClusterNetwork::nic_component(a, network)) &&
         !contains(failed, net::ClusterNetwork::nic_component(b, network));
}

/// Ground truth: src can reach dst at all — directly or through any relay.
/// (In the 2N+2 geometry every path is at most two hops; see
/// policy/backup_sequences.hpp.)
bool oracle_reachable(net::NodeId src, net::NodeId dst,
                      const std::vector<net::ComponentIndex>& failed) {
  for (net::NetworkId k = 0; k < net::kNetworksPerHost; ++k) {
    if (oracle_link_up(src, dst, k, failed)) return true;
  }
  for (net::NodeId relay = 0; relay < kNodeCount; ++relay) {
    if (relay == src || relay == dst) continue;
    bool leg1 = false, leg2 = false;
    for (net::NetworkId k = 0; k < net::kNetworksPerHost; ++k) {
      leg1 = leg1 || oracle_link_up(src, relay, k, failed);
      leg2 = leg2 || oracle_link_up(relay, dst, k, failed);
    }
    if (leg1 && leg2) return true;
  }
  return false;
}

/// Every distinct component that a chaos schedule ever fails.
std::vector<net::ComponentIndex> schedule_components(std::uint64_t seed,
                                                     std::uint32_t campaign) {
  chaos::ScheduleConfig config;
  config.node_count = kNodeCount;
  config.events = 12;
  const chaos::Schedule schedule =
      chaos::generate_schedule(seed, campaign, config);
  std::set<net::ComponentIndex> components;
  for (const net::FailureAction& action : schedule.actions) {
    if (action.fail) components.insert(action.component);
  }
  return {components.begin(), components.end()};
}

void check_walk(const BackupSequences& sequences,
                const std::vector<net::ComponentIndex>& failed) {
  for (net::NodeId src = 0; src < kNodeCount; ++src) {
    for (net::NodeId dst = 0; dst < kNodeCount; ++dst) {
      if (src == dst) continue;
      const WalkOutcome outcome = sequences.walk(src, dst, failed);
      // Loop-freedom: no node appears twice on any walked path.
      std::vector<net::NodeId> nodes = outcome.path;
      std::sort(nodes.begin(), nodes.end());
      EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end())
          << "loop in path for " << src << "->" << dst;
      EXPECT_LE(outcome.path.size(), 3u);  // at most one relay hop
      // Delivery exactly when the degraded topology admits any path.
      EXPECT_EQ(outcome.delivered, oracle_reachable(src, dst, failed))
          << src << "->" << dst;
      if (outcome.delivered) {
        ASSERT_FALSE(outcome.path.empty());
        EXPECT_EQ(outcome.path.front(), src);
        EXPECT_EQ(outcome.path.back(), dst);
      }
    }
  }
}

TEST(BackupSequenceProperty, LoopFreeAndCompleteUnderSingleFailures) {
  const BackupSequences sequences(kNodeCount, net::kNetworkA);
  for (std::uint32_t campaign = 0; campaign < 50; ++campaign) {
    for (const net::ComponentIndex component :
         schedule_components(/*seed=*/7, campaign)) {
      check_walk(sequences, {component});
    }
  }
}

TEST(BackupSequenceProperty, LoopFreeAndCompleteUnderDoubleFailures) {
  const BackupSequences sequences(kNodeCount, net::kNetworkA);
  for (std::uint32_t campaign = 0; campaign < 50; ++campaign) {
    const std::vector<net::ComponentIndex> components =
        schedule_components(/*seed=*/7, campaign);
    for (std::size_t i = 0; i < components.size(); ++i) {
      for (std::size_t j = i + 1; j < components.size(); ++j) {
        check_walk(sequences, {components[i], components[j]});
      }
    }
  }
}

TEST(BackupSequenceProperty, HealthyClusterAlwaysUsesPreferredDirect) {
  const BackupSequences sequences(kNodeCount, net::kNetworkB);
  for (net::NodeId src = 0; src < kNodeCount; ++src) {
    for (net::NodeId dst = 0; dst < kNodeCount; ++dst) {
      if (src == dst) continue;
      const WalkOutcome outcome = sequences.walk(src, dst, {});
      EXPECT_TRUE(outcome.delivered);
      EXPECT_EQ(outcome.path.size(), 2u);  // direct, no relay
    }
  }
}

// --- alternate-path precomputation on the 2N+2 geometry ---------------------

TEST(AlternatePathPrecompute, ArcOrderIsDirectThenCircularRelays) {
  const BackupSequences sequences(kNodeCount, net::kNetworkA);
  const auto& arcs = sequences.arcs(2, 5);
  // Two direct arcs first, preferred network leading.
  ASSERT_GE(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].kind, BackupArc::Kind::kDirect);
  EXPECT_EQ(arcs[0].network, net::kNetworkA);
  EXPECT_EQ(arcs[1].kind, BackupArc::Kind::kDirect);
  EXPECT_EQ(arcs[1].network, net::kNetworkB);
  // Then every other node once, in ring order from src+1, skipping src/dst.
  ASSERT_EQ(arcs.size(), 2u + kNodeCount - 2u);
  const std::vector<net::NodeId> expected_relays = {3, 4, 6, 7, 0, 1};
  for (std::size_t i = 0; i < expected_relays.size(); ++i) {
    EXPECT_EQ(arcs[2 + i].kind, BackupArc::Kind::kRelay);
    EXPECT_EQ(arcs[2 + i].relay, expected_relays[i]) << "arc " << (2 + i);
  }
}

TEST(AlternatePathPrecompute, FleetGatewayRingOrderWrapsAt27) {
  // The 27-cluster fleet's gateway ring, one gateway per cluster: the relay
  // fallback order for gateway 25 -> 3 must wrap 26, 0, 1, 2(skip 3), 4...
  const BackupSequences sequences(27, net::kNetworkA);
  const auto& arcs = sequences.arcs(25, 3);
  ASSERT_EQ(arcs.size(), 2u + 27u - 2u);
  EXPECT_EQ(arcs[2].relay, 26);
  EXPECT_EQ(arcs[3].relay, 0);
  EXPECT_EQ(arcs[4].relay, 1);
  EXPECT_EQ(arcs[5].relay, 2);
  EXPECT_EQ(arcs[6].relay, 4);  // 3 is the destination, skipped
  EXPECT_EQ(arcs.back().relay, 24);
}

// --- the alternate-path policy's live behaviour -----------------------------

TEST(AlternatePathPolicy, SwapsToBackupAfterNotification) {
  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = 4, .backplane = {}});
  AlternatePathConfig config;
  config.notify_delay = 5_ms;
  AlternatePathPolicy policy(network, config);
  policy.start();
  simulator.run_for(100_ms);

  const auto nic = net::ClusterNetwork::nic_component(1, 0);
  network.set_component_failed(nic, true);
  policy.on_component_failed(nic);
  // Before the notification lands the policy still trusts the dead link.
  EXPECT_TRUE(policy.known_failed().empty());
  simulator.run_for(10_ms);
  ASSERT_EQ(policy.known_failed().size(), 1u);
  EXPECT_EQ(policy.known_failed().front(), nic);
  // One notification fan-out, charged through the uniform overhead hook.
  EXPECT_EQ(policy.control_messages(), 4u);

  // The swap is visible on the data plane: 0 reaches 1 despite the dead
  // primary NIC, over the precomputed alternate.
  bool reachable = false;
  policy.icmp(0).ping(net::cluster_ip(net::kNetworkA, 1), {},
                      [&reachable](const proto::PingResult& r) {
                        reachable = r.success;
                      });
  simulator.run_for(1_s);
  EXPECT_TRUE(reachable);

  // Restoration swaps back and is charged the same way.
  network.set_component_failed(nic, false);
  policy.on_component_restored(nic);
  simulator.run_for(10_ms);
  EXPECT_TRUE(policy.known_failed().empty());
  EXPECT_EQ(policy.control_messages(), 8u);
  policy.stop();
}

}  // namespace
}  // namespace drs::policy
