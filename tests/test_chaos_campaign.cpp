// Chaos-campaign subsystem: schedule determinism and shape guarantees,
// campaign replayability, thread-count invariance of the sharded runner, and
// the acceptance property — a healthy protocol sails through a seeded
// 1000-campaign smoke with zero invariant violations, while a crippled one
// (failure detection disabled) must be flagged. The latter is the proof that
// the checkers can fail and are therefore checking something.
#include "chaos/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace drs::chaos {
namespace {

// --- Schedule generation -----------------------------------------------------

class ScheduleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperties, ShapeGuaranteesHold) {
  const std::uint64_t seed = GetParam();
  ScheduleConfig config;
  config.node_count = 6;
  config.events = 40;
  config.max_concurrent_failures = 4;
  for (std::uint64_t campaign : {0ull, 1ull, 17ull}) {
    const Schedule schedule = generate_schedule(seed, campaign, config);
    EXPECT_EQ(schedule.churn_events, config.events);
    const auto components = static_cast<net::ComponentIndex>(
        2u * config.node_count + 2u);
    std::set<net::ComponentIndex> failed;
    util::SimTime previous = util::SimTime::zero();
    for (std::size_t i = 0; i < schedule.actions.size(); ++i) {
      const net::FailureAction& action = schedule.actions[i];
      EXPECT_LT(action.component, components);
      EXPECT_GE(action.at, previous);
      if (i < schedule.churn_events) {
        if (i > 0) {
          EXPECT_GE(action.at - previous, config.min_gap);
        }
        if (action.fail) {
          EXPECT_TRUE(failed.insert(action.component).second)
              << "fail of an already-failed component";
        } else {
          EXPECT_EQ(failed.erase(action.component), 1u)
              << "restore of a healthy component";
        }
        EXPECT_LE(failed.size(), config.max_concurrent_failures);
      } else {
        // Final batch: restores of everything still failed, at `end`.
        EXPECT_FALSE(action.fail);
        EXPECT_EQ(action.at, schedule.end);
        EXPECT_EQ(failed.erase(action.component), 1u);
      }
      previous = action.at;
    }
    EXPECT_TRUE(failed.empty()) << "schedule must end fully restored";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Values(1u, 2u, 0xC4A05u));

TEST(Schedule, DeterministicAndCampaignIndependent) {
  ScheduleConfig config;
  const Schedule a = generate_schedule(11, 3, config);
  const Schedule b = generate_schedule(11, 3, config);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].at, b.actions[i].at);
    EXPECT_EQ(a.actions[i].component, b.actions[i].component);
    EXPECT_EQ(a.actions[i].fail, b.actions[i].fail);
  }
  // Different campaign (or seed) => different draws, with overwhelming
  // probability visible in the first few actions.
  const Schedule c = generate_schedule(11, 4, config);
  const Schedule d = generate_schedule(12, 3, config);
  auto differs = [&](const Schedule& other) {
    for (std::size_t i = 0; i < std::min(a.actions.size(), other.actions.size());
         ++i) {
      if (a.actions[i].component != other.actions[i].component ||
          a.actions[i].at != other.actions[i].at) {
        return true;
      }
    }
    return a.actions.size() != other.actions.size();
  };
  EXPECT_TRUE(differs(c));
  EXPECT_TRUE(differs(d));
}

// --- Campaign + runner determinism -------------------------------------------

TEST(Campaign, BitReproducible) {
  CampaignConfig config;
  const CampaignResult a = run_campaign(5, 2, config);
  const CampaignResult b = run_campaign(5, 2, config);
  EXPECT_EQ(a.actions_applied, b.actions_applied);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  ASSERT_EQ(a.failover_latencies_ms.size(), b.failover_latencies_ms.size());
  for (std::size_t i = 0; i < a.failover_latencies_ms.size(); ++i) {
    EXPECT_EQ(a.failover_latencies_ms[i], b.failover_latencies_ms[i]);
  }
}

TEST(Runner, ThreadCountInvariantReport) {
  ChaosOptions options;
  options.seed = 2026;
  options.campaigns = 24;
  options.threads = 1;
  const std::string single = run_chaos(options).to_json();
  for (unsigned threads : {2u, 8u}) {
    options.threads = threads;
    EXPECT_EQ(run_chaos(options).to_json(), single)
        << threads << " threads must not change the report";
  }
}

TEST(Runner, FirstCampaignReplaysTheSameCoordinates) {
  // Replay workflow: campaign i of a sweep == a 1-campaign run starting at i.
  ChaosOptions sweep;
  sweep.seed = 99;
  sweep.campaigns = 8;
  sweep.threads = 1;
  const ChaosReport all = run_chaos(sweep);

  ChaosOptions one = sweep;
  one.first_campaign = 5;
  one.campaigns = 1;
  const ChaosReport replay = run_chaos(one);
  const CampaignResult direct = run_campaign(99, 5, sweep.campaign);
  EXPECT_EQ(replay.actions_applied, direct.actions_applied);
  EXPECT_EQ(replay.checks, direct.checks);
  EXPECT_EQ(replay.sim_events, direct.sim_events);
  // And the sweep's totals decompose into per-campaign results.
  std::uint64_t events = 0;
  for (std::uint64_t i = 0; i < sweep.campaigns; ++i) {
    events += run_campaign(99, i, sweep.campaign).sim_events;
  }
  EXPECT_EQ(all.sim_events, events);
}

// --- The acceptance pair: healthy is clean, crippled is flagged --------------

TEST(ChaosSmoke, Healthy1000CampaignsZeroViolations) {
  ChaosOptions options;
  options.seed = 0xD125;
  options.campaigns = 1000;
  options.threads = 0;  // hardware; the report is thread-count invariant
  const ChaosReport report = run_chaos(options);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.total_violations, 0u);
  EXPECT_EQ(report.campaigns_with_violations, 0u);
  EXPECT_GT(report.checks, 0u);
  // The campaigns really churned and really measured failovers.
  EXPECT_GT(report.actions_applied, 10u * options.campaigns);
  EXPECT_GT(report.latency_ms.count(), options.campaigns);
  // Every measured failover respected the configured repair bound.
  EXPECT_LT(report.latency_ms.max(),
            core::worst_case_repair_bound(options.campaign.drs).to_millis());
}

TEST(ChaosSmoke, CrippledDetectionIsFlagged) {
  ChaosOptions options;
  options.seed = 0xD125;  // same seeds, sabotaged daemons
  options.campaigns = 20;
  options.threads = 0;
  options.campaign.cripple_detection = true;
  const ChaosReport report = run_chaos(options);
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.violations_by_invariant.at(kInvariantNoBlackhole), 0u);
  EXPECT_GT(report.violations_by_invariant.at(kInvariantFailoverLatency), 0u);
  // With detection off no detour is ever installed, so there is nothing to
  // clean up and no cycle to create: those invariants stay green — evidence
  // the four checkers are independent.
  EXPECT_EQ(report.violations_by_invariant.at(kInvariantDetourCleanup), 0u);
  EXPECT_EQ(report.violations_by_invariant.at(kInvariantNoRoutingCycle), 0u);
  EXPECT_FALSE(report.sample_violations.empty());
  EXPECT_LE(report.sample_violations.size(), 32u);
}

// --- Report rendering --------------------------------------------------------

TEST(Report, JsonCarriesTheReplayCoordinates) {
  ChaosOptions options;
  options.seed = 321;
  options.first_campaign = 7;
  options.campaigns = 2;
  options.threads = 1;
  const ChaosReport report = run_chaos(options);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"seed\":321"), std::string::npos);
  EXPECT_NE(json.find("\"first_campaign\":7"), std::string::npos);
  EXPECT_NE(json.find("\"campaigns\":2"), std::string::npos);
  EXPECT_NE(json.find("\"no_blackhole\":"), std::string::npos);
  EXPECT_NE(json.find("\"failover_latency_ms\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace drs::chaos
