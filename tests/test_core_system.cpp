#include "core/system.hpp"

#include <gtest/gtest.h>

#include "analytic/enumerate.hpp"
#include "net/failure.hpp"

namespace drs::core {
namespace {

using namespace drs::util::literals;

DrsConfig fast_config() {
  DrsConfig c;
  c.probe_interval = 50_ms;
  c.probe_timeout = 20_ms;
  c.failures_to_down = 2;
  c.discover_timeout = 25_ms;
  return c;
}

TEST(DrsSystem, BuildsOneDaemonPerHost) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsSystem system(network, fast_config());
  EXPECT_EQ(system.node_count(), 5);
  for (net::NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(system.daemon(i).self(), i);
    EXPECT_FALSE(system.daemon(i).running());
  }
  system.start();
  for (net::NodeId i = 0; i < 5; ++i) EXPECT_TRUE(system.daemon(i).running());
}

TEST(DrsSystem, AggregateCountersAccumulate) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(500_ms);
  // 4 nodes x 3 peers x 2 networks per 50 ms cycle, ~10 cycles.
  EXPECT_GT(system.total_probes_sent(), 4u * 3 * 2 * 5);
  EXPECT_EQ(system.total_route_installs(), 0u);  // healthy cluster
}

TEST(DrsSystem, ReachabilityMatrixHealthy) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(300_ms);
  for (net::NodeId a = 0; a < 4; ++a) {
    for (net::NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(system.test_reachability(a, b)) << a << "->" << b;
    }
  }
}

// Property sweep: under ANY single component failure, every pair of live
// nodes stays mutually reachable once DRS converges — the paper's f=1
// guarantee, exercised at packet level component by component.
class SingleFailureSweep : public ::testing::TestWithParam<int> {};

TEST_P(SingleFailureSweep, AllPairsSurviveAnySingleComponentFailure) {
  const auto component = static_cast<net::ComponentIndex>(GetParam());
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(200_ms);
  network.set_component_failed(component, true);
  system.settle(600_ms);
  for (net::NodeId a = 0; a < 5; ++a) {
    for (net::NodeId b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(system.test_reachability(a, b))
          << a << "->" << b << " with "
          << network.component(component).to_string() << " failed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EveryComponent, SingleFailureSweep,
                         ::testing::Range(0, 12));  // 2*5+2 components

// Property sweep: for every two-component failure pattern on a 4-node
// cluster, packet-level reachability of pair (0,1) equals the analytic
// predicate. Exhaustive, not sampled: C(10,2) = 45 patterns.
class DoubleFailureExhaustive
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DoubleFailureExhaustive, PairReachabilityMatchesModel) {
  const auto [c1, c2] = GetParam();
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(200_ms);
  network.set_component_failed(static_cast<net::ComponentIndex>(c1), true);
  network.set_component_failed(static_cast<net::ComponentIndex>(c2), true);
  system.settle(800_ms);

  analytic::ComponentSet failed;
  failed.set(c1);
  failed.set(c2);
  const bool expected = analytic::pair_connected(4, failed, 0, 1);
  EXPECT_EQ(system.test_reachability(0, 1), expected)
      << "components " << c1 << "," << c2;
}

std::vector<std::pair<int, int>> all_pairs_of_components() {
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) pairs.emplace_back(a, b);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(Exhaustive, DoubleFailureExhaustive,
                         ::testing::ValuesIn(all_pairs_of_components()));

// Exhaustive three-component sweep on the same 4-node cluster: C(10,3) = 120
// patterns, each checked against the analytic predicate at packet level.
class TripleFailureExhaustive
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TripleFailureExhaustive, PairReachabilityMatchesModel) {
  const auto [c1, c2, c3] = GetParam();
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(200_ms);
  for (int c : {c1, c2, c3}) {
    network.set_component_failed(static_cast<net::ComponentIndex>(c), true);
  }
  system.settle(800_ms);

  analytic::ComponentSet failed;
  failed.set(c1);
  failed.set(c2);
  failed.set(c3);
  const bool expected = analytic::pair_connected(4, failed, 0, 1);
  EXPECT_EQ(system.test_reachability(0, 1), expected)
      << "components " << c1 << "," << c2 << "," << c3;
}

std::vector<std::tuple<int, int, int>> all_triples_of_components() {
  std::vector<std::tuple<int, int, int>> triples;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      for (int c = b + 1; c < 10; ++c) triples.emplace_back(a, b, c);
    }
  }
  return triples;
}

INSTANTIATE_TEST_SUITE_P(Exhaustive, TripleFailureExhaustive,
                         ::testing::ValuesIn(all_triples_of_components()));

TEST(DrsSystem, StopHaltsProbing) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 3, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(300_ms);
  system.stop();
  const auto probes = system.total_probes_sent();
  system.settle(300_ms);
  EXPECT_EQ(system.total_probes_sent(), probes);
}

TEST(DrsSystem, SteadyStateHasZeroRoutingChurn) {
  // A healthy cluster must not touch its routing tables at all: probing is
  // read-only until a verdict changes. Guards against accidental
  // install/remove cycles in sync_routes.
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(500_ms);
  std::vector<std::uint64_t> versions;
  for (net::NodeId i = 0; i < 6; ++i) {
    versions.push_back(network.host(i).routing_table().version());
  }
  system.settle(5_s);
  for (net::NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(network.host(i).routing_table().version(), versions[i])
        << "node " << i << " churned its routing table while healthy";
    EXPECT_TRUE(system.daemon(i).metrics().route_changes.empty());
  }
}

TEST(DrsSystem, ControlTrafficOnlyUnderFailures) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  DrsSystem system(network, fast_config());
  system.start();
  system.settle(1_s);
  EXPECT_EQ(system.total_control_messages(), 0u);  // healthy: silence
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  system.settle(1_s);
  EXPECT_GT(system.total_control_messages(), 0u);
}

}  // namespace
}  // namespace drs::core
