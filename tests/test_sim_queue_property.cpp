// Differential property test: the hierarchical-timing-wheel EventQueue must
// be observationally identical to a plain binary-heap reference model under
// randomized push/cancel/pop workloads — same pop order (time, then FIFO
// insertion order), same size, same total_scheduled. The time distribution
// deliberately exercises every placement path: dense near-term times (level
// 0 buckets), same-timestamp bursts (FIFO ties), mid-range times (coarser
// levels that cascade), far-future times (the overflow heap), and times at
// or below the advancing horizon (direct-to-ready pushes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace drs::sim {
namespace {

using util::SimTime;

struct ModelEvent {
  std::int64_t time_ns = 0;
  std::uint64_t seq = 0;  // push order; breaks ties FIFO
  EventId id = kInvalidEventId;
};

/// Sorted-vector reference model: O(n) per op, obviously correct.
class ReferenceQueue {
 public:
  void push(std::int64_t time_ns, EventId id) {
    events_.push_back(ModelEvent{time_ns, ++pushed_, id});
  }

  bool cancel(EventId id) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->id == id) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  ModelEvent pop() {
    auto best = events_.begin();
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->time_ns < best->time_ns ||
          (it->time_ns == best->time_ns && it->seq < best->seq)) {
        best = it;
      }
    }
    const ModelEvent out = *best;
    events_.erase(best);
    return out;
  }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  std::uint64_t pushed() const { return pushed_; }
  EventId random_live(util::Rng& rng) const {
    return events_[static_cast<std::size_t>(
                       rng.next_below(events_.size()))]
        .id;
  }

 private:
  std::vector<ModelEvent> events_;
  std::uint64_t pushed_ = 0;
};

/// Draws a push time relative to the latest popped time so the workload
/// keeps straddling the wheel horizon as it advances.
std::int64_t draw_time(util::Rng& rng, std::int64_t watermark) {
  switch (rng.next_below(8)) {
    case 0:  // same-time burst: FIFO tie-order coverage
      return watermark + 1000;
    case 1:  // at or before the horizon: direct-to-ready path
      return watermark;
    case 2:  // far future: overflow heap (beyond the wheel's ~2^46 ns span)
      return watermark + (std::int64_t{1} << 47) +
             static_cast<std::int64_t>(rng.next_below(1u << 20));
    case 3:  // mid-range: coarse levels that must cascade down
      return watermark + static_cast<std::int64_t>(
                             rng.next_below(std::uint64_t{1} << 34));
    default:  // dense near-term traffic
      return watermark +
             static_cast<std::int64_t>(rng.next_below(1u << 16));
  }
}

void run_differential(std::uint64_t seed, int ops) {
  EventQueue queue;
  ReferenceQueue model;
  util::Rng rng(seed);
  std::vector<EventId> retired;  // popped or cancelled: cancel must fail
  std::int64_t watermark = 0;

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 5 || model.empty()) {
      const std::int64_t t = draw_time(rng, watermark);
      const EventId id = queue.push(SimTime::from_ns(t), [] {});
      ASSERT_NE(id, kInvalidEventId);
      model.push(t, id);
    } else if (roll < 7) {
      const EventId id = model.random_live(rng);
      ASSERT_TRUE(queue.is_pending(id));
      ASSERT_TRUE(queue.cancel(id));
      ASSERT_TRUE(model.cancel(id));
      retired.push_back(id);
    } else {
      const ModelEvent expected = model.pop();
      const EventQueue::Popped got = queue.pop();
      ASSERT_EQ(got.time.ns(), expected.time_ns) << "op " << op;
      ASSERT_EQ(got.id, expected.id) << "op " << op;
      watermark = std::max(watermark, expected.time_ns);
      retired.push_back(expected.id);
    }
    ASSERT_EQ(queue.size(), model.size());
    ASSERT_EQ(queue.total_scheduled(), model.pushed());
    if (!retired.empty() && rng.next_below(4) == 0) {
      const EventId stale = retired[static_cast<std::size_t>(
          rng.next_below(retired.size()))];
      EXPECT_FALSE(queue.is_pending(stale));
      EXPECT_FALSE(queue.cancel(stale));
    }
  }

  // Drain: the full remaining pop order must match the model.
  while (!model.empty()) {
    const ModelEvent expected = model.pop();
    const EventQueue::Popped got = queue.pop();
    ASSERT_EQ(got.time.ns(), expected.time_ns);
    ASSERT_EQ(got.id, expected.id);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueProperty, MatchesReferenceModelSeed1) {
  run_differential(0xD1FF1u, 10000);
}

TEST(EventQueueProperty, MatchesReferenceModelSeed2) {
  run_differential(0xD1FF2u, 10000);
}

TEST(EventQueueProperty, MatchesReferenceModelSeed3) {
  run_differential(0xD1FF3u, 10000);
}

TEST(EventQueueProperty, ManySeedsShortRuns) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_differential(seed * 0x9E3779B9u, 500);
  }
}

}  // namespace
}  // namespace drs::sim
