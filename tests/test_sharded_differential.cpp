// Differential proof that the sharded fleet is byte-identical to the legacy
// single-queue fleet at every shard count.
//
// Every scenario runs once on a legacy cluster::Fleet (one Simulator, one
// tracer — the oracle) and once per shard count in {1, 2, 4, 8} on a
// cluster::ShardedFleet, with identical configs and identical injection
// schedules. The comparison is the strongest the topology admits:
//   - the full protocol trace (every TraceEventKind except kQueueHighWater,
//     which reports per-queue occupancy and is per-shard by design),
//     serialized to canonical JSON and compared as bytes — send instants,
//     ordering, and payload fields must match to the nanosecond;
//   - the full metric snapshot minus the sim./arena./shard. prefixes (event
//     slots, arena chunks and friends measure per-queue populations, which
//     sharding intentionally changes);
//   - probe totals and the pristine flag.
//
// The corpus covers 20 scenarios across four shapes: healthy fleets of
// varying geometry, targeted component failures (cluster NICs and
// backplanes, gateway NICs, the shared relay hub — failed and healed),
// seeded chaos schedules over the fleet's flat component space, and the
// 27-cluster fleet_smoke deployment shape. docs/SHARDING.md explains why
// equality is exact rather than statistical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/schedule.hpp"
#include "cluster/fleet.hpp"
#include "cluster/partition.hpp"
#include "net/failure.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace drs {
namespace {

// Every trace kind except kQueueHighWater (see the file comment).
std::vector<obs::TraceEvent> protocol_events(
    const std::vector<obs::TraceEvent>& events) {
  return obs::filter_kinds(
      events,
      {obs::TraceEventKind::kPingSent, obs::TraceEventKind::kPingLost,
       obs::TraceEventKind::kProbeLost, obs::TraceEventKind::kLinkChange,
       obs::TraceEventKind::kDetourInstall, obs::TraceEventKind::kDetourSwitch,
       obs::TraceEventKind::kDetourTeardown,
       obs::TraceEventKind::kDiscoveryStart,
       obs::TraceEventKind::kRelaySelected, obs::TraceEventKind::kLeaseGranted,
       obs::TraceEventKind::kLeaseExpired, obs::TraceEventKind::kTcpRetransmit,
       obs::TraceEventKind::kTcpRto});
}

// Drops flat "<prefix><name>":<int> entries from a canonical metrics JSON
// (names are keys in sorted flat maps, values plain integers, so each entry
// ends at the next ',' or '}').
std::string strip_metric_prefixes(std::string json) {
  for (const char* prefix : {"\"sim.", "\"arena.", "\"shard.", "\"engine."}) {
    std::size_t pos;
    while ((pos = json.find(prefix)) != std::string::npos) {
      const std::size_t colon = json.find(':', pos);
      if (colon == std::string::npos) break;
      const std::size_t end = json.find_first_of(",}", colon);
      if (end == std::string::npos) break;
      if (json[end] == ',') {
        json.erase(pos, end - pos + 1);
      } else {
        std::size_t begin = pos;
        if (begin > 0 && json[begin - 1] == ',') --begin;
        json.erase(begin, end - begin);
      }
    }
  }
  return json;
}

/// Everything one fleet run exposes to comparison.
struct Observed {
  std::string trace_json;    // canonical JSON of protocol_events
  std::string metrics_json;  // registry snapshot minus sim./arena./shard.
  std::uint64_t probes_sent = 0;
  bool pristine = false;
};

/// Byte compare with a readable first-divergence excerpt instead of GTest's
/// full-string dump (the traces run to megabytes).
void expect_same_bytes(const std::string& legacy, const std::string& sharded,
                       const std::string& label, const char* what) {
  if (legacy == sharded) return;
  const std::size_t n = std::min(legacy.size(), sharded.size());
  std::size_t i = 0;
  while (i < n && legacy[i] == sharded[i]) ++i;
  const std::size_t begin = i > 60 ? i - 60 : 0;
  ADD_FAILURE() << label << ": " << what << " diverges at byte " << i
                << " (legacy " << legacy.size() << "B, sharded "
                << sharded.size() << "B)\n  legacy : ..."
                << legacy.substr(begin, 120) << "\n  sharded: ..."
                << sharded.substr(begin, 120);
}

struct Scenario {
  std::string name;
  cluster::FleetConfig fleet;
  std::vector<net::FailureAction> actions;  // scheduled after start()
  util::Duration run = util::Duration::seconds(1);
};

cluster::FleetConfig fleet_config(std::uint16_t clusters,
                                  std::uint16_t nodes) {
  cluster::FleetConfig config;
  config.clusters = clusters;
  config.nodes_per_cluster = nodes;
  config.drs = chaos::fast_campaign_drs_config();
  return config;
}

Observed run_legacy(const Scenario& scenario) {
  sim::Simulator sim;
  obs::Tracer tracer(std::size_t{1} << 20);
  sim.set_tracer(&tracer);
  cluster::Fleet fleet(sim, scenario.fleet);
  fleet.start();
  for (const net::FailureAction& action : scenario.actions) {
    cluster::Fleet* target = &fleet;
    const net::ComponentIndex component = action.component;
    const bool fail = action.fail;
    sim.schedule_at(action.at, [target, component, fail] {
      target->set_component_failed(component, fail);
    });
  }
  sim.run_until(util::SimTime::zero() + scenario.run);
  EXPECT_EQ(tracer.evicted(), 0u)
      << scenario.name << ": legacy ring too small for a full-trace compare";
  Observed observed;
  observed.trace_json = obs::to_canonical_json(protocol_events(tracer.events()));
  obs::MetricRegistry registry;
  fleet.collect_metrics(registry);
  observed.metrics_json = strip_metric_prefixes(registry.to_json());
  observed.probes_sent = fleet.total_probes_sent();
  observed.pristine = fleet.all_pristine();
  return observed;
}

Observed run_sharded(const Scenario& scenario, std::uint32_t shards) {
  cluster::ShardedFleetConfig config;
  config.fleet = scenario.fleet;
  config.shards = shards;
  config.trace_capacity = std::size_t{1} << 16;
  config.check_windows = true;
  cluster::ShardedFleet fleet(config);
  fleet.start();
  for (const net::FailureAction& action : scenario.actions) {
    fleet.schedule_component_failure(action.at, action.component, action.fail);
  }
  fleet.run_until(util::SimTime::zero() + scenario.run);
  EXPECT_EQ(fleet.engine().window_violations(), 0u) << scenario.name;
  // EOT conservativeness across the whole corpus: adaptive windows are on by
  // default, and no cross-shard arrival may land in sim-time its destination
  // shard could already have executed past.
  EXPECT_GE(fleet.engine().min_foreign_margin_ns(), 0) << scenario.name;
  Observed observed;
  observed.trace_json =
      obs::to_canonical_json(protocol_events(fleet.merged_trace()));
  obs::MetricRegistry registry;
  fleet.collect_metrics(registry);
  observed.metrics_json = strip_metric_prefixes(registry.to_json());
  observed.probes_sent = fleet.total_probes_sent();
  observed.pristine = fleet.all_pristine();
  return observed;
}

void run_scenario(const Scenario& scenario) {
  SCOPED_TRACE(scenario.name);
  const Observed legacy = run_legacy(scenario);
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const std::string label = scenario.name + " @" + std::to_string(shards);
    const Observed sharded = run_sharded(scenario, shards);
    expect_same_bytes(legacy.trace_json, sharded.trace_json, label, "trace");
    expect_same_bytes(legacy.metrics_json, sharded.metrics_json, label,
                      "metrics");
    EXPECT_EQ(legacy.probes_sent, sharded.probes_sent) << label;
    EXPECT_EQ(legacy.pristine, sharded.pristine) << label;
  }
}

util::SimTime at_ms(std::int64_t ms) {
  return util::SimTime::zero() + util::Duration::millis(ms);
}

// -- shape 1: healthy fleets of varying geometry (5 scenarios) ---------------

TEST(ShardedDifferential, HealthyFleets) {
  run_scenario({"healthy-k2-n4", fleet_config(2, 4), {},
                util::Duration::millis(1200)});
  run_scenario({"healthy-k3-n4", fleet_config(3, 4), {},
                util::Duration::millis(1000)});
  run_scenario({"healthy-k4-n4", fleet_config(4, 4), {},
                util::Duration::millis(800)});
  run_scenario({"healthy-k5-n4", fleet_config(5, 4), {},
                util::Duration::millis(600)});
  run_scenario({"healthy-k6-n6", fleet_config(6, 6), {},
                util::Duration::millis(500)});
}

// -- shape 2: targeted component failures (7 scenarios) ----------------------

TEST(ShardedDifferential, TargetedFailures) {
  {
    // A cluster-internal NIC outage with recovery: purely shard-local churn.
    Scenario s{"cluster-nic-outage", fleet_config(4, 4), {},
               util::Duration::millis(1800)};
    s.actions = {{at_ms(400), 0, true}, {at_ms(1000), 0, false}};
    run_scenario(s);
  }
  {
    // One cluster's backplane A dies and heals (local index 2n+0).
    Scenario s{"cluster-backplane-outage", fleet_config(4, 4), {},
               util::Duration::millis(1800)};
    const net::ComponentIndex stride = 2u * 4u + 2u;
    s.actions = {{at_ms(400), 2u * stride + 2u * 4u, true},
                 {at_ms(1100), 2u * stride + 2u * 4u, false}};
    run_scenario(s);
  }
  {
    // Gateway NIC outage with recovery: echo-mesh timeouts on both sides of
    // the relay, then healing.
    Scenario s{"gateway-outage", fleet_config(4, 4), {},
               util::Duration::millis(1800)};
    const net::ComponentIndex gateway1 = 4u * (2u * 4u + 2u) + 1u;
    s.actions = {{at_ms(400), gateway1, true}, {at_ms(1000), gateway1, false}};
    run_scenario(s);
  }
  {
    // Gateway NIC failed for the rest of the run.
    Scenario s{"gateway-permanent", fleet_config(3, 4), {},
               util::Duration::millis(1500)};
    const net::ComponentIndex gateway0 = 3u * (2u * 4u + 2u);
    s.actions = {{at_ms(500), gateway0, true}};
    run_scenario(s);
  }
  {
    // The shared relay hub dies and heals: the oracle's failure transitions,
    // in-flight loss accounting and dropped_failed counting all engage.
    Scenario s{"relay-outage", fleet_config(4, 4), {},
               util::Duration::millis(1800)};
    const net::ComponentIndex relay = 4u * (2u * 4u + 2u) + 4u;
    s.actions = {{at_ms(400), relay, true}, {at_ms(1100), relay, false}};
    run_scenario(s);
  }
  {
    // Relay dead for the rest of the run: every later offer drops.
    Scenario s{"relay-permanent", fleet_config(3, 4), {},
               util::Duration::millis(1500)};
    const net::ComponentIndex relay = 3u * (2u * 4u + 2u) + 3u;
    s.actions = {{at_ms(600), relay, true}};
    run_scenario(s);
  }
  {
    // Overlapping outages across all three component classes.
    Scenario s{"mixed-overlap", fleet_config(5, 4), {},
               util::Duration::millis(2000)};
    const net::ComponentIndex stride = 2u * 4u + 2u;
    const net::ComponentIndex gateway2 = 5u * stride + 2u;
    const net::ComponentIndex relay = 5u * stride + 5u;
    s.actions = {{at_ms(400), 1u * stride + 3u, true},
                 {at_ms(600), relay, true},
                 {at_ms(800), gateway2, true},
                 {at_ms(1000), relay, false},
                 {at_ms(1200), 1u * stride + 3u, false},
                 {at_ms(1400), gateway2, false}};
    run_scenario(s);
  }
}

// -- shape 3: seeded chaos schedules over the flat component space (6) -------

TEST(ShardedDifferential, ChaosSchedules) {
  const cluster::FleetConfig fleet = fleet_config(3, 4);
  const net::ComponentIndex components = 3u * (2u * 4u + 2u) + 3u + 1u;
  chaos::ScheduleConfig schedule_config;
  schedule_config.events = 8;
  schedule_config.start = util::Duration::millis(400);
  schedule_config.min_gap = util::Duration::millis(150);
  schedule_config.max_jitter = util::Duration::millis(50);
  schedule_config.max_concurrent_failures = 3;
  for (std::uint64_t campaign = 0; campaign < 6; ++campaign) {
    const chaos::Schedule schedule = chaos::generate_domain_schedule(
        0x5EEDFA11u, campaign, components, schedule_config);
    Scenario s{"chaos-campaign-" + std::to_string(campaign), fleet,
               schedule.actions,
               (schedule.end - util::SimTime::zero()) +
                   util::Duration::millis(500)};
    run_scenario(s);
  }
}

// -- shape 4: the paper's 27-cluster deployment shape (2 scenarios) ----------

TEST(ShardedDifferential, FleetSmokeShape) {
  run_scenario({"fleet27-healthy", fleet_config(27, 8), {},
                util::Duration::millis(250)});
  {
    Scenario s{"fleet27-relay-blip", fleet_config(27, 8), {},
               util::Duration::millis(250)};
    const net::ComponentIndex stride = 2u * 8u + 2u;
    const net::ComponentIndex relay = 27u * stride + 27u;
    const net::ComponentIndex gateway13 = 27u * stride + 13u;
    s.actions = {{at_ms(80), relay, true},
                 {at_ms(120), gateway13, true},
                 {at_ms(140), relay, false},
                 {at_ms(200), gateway13, false}};
    run_scenario(s);
  }
}

}  // namespace
}  // namespace drs
