#include "montecarlo/estimator.hpp"

#include <gtest/gtest.h>

#include "analytic/enumerate.hpp"
#include "analytic/survivability.hpp"
#include "montecarlo/component_model.hpp"
#include "montecarlo/convergence.hpp"

namespace drs::mc {
namespace {

TEST(Sampling, DrawsExactlyFDistinctComponents) {
  util::Rng rng(1);
  analytic::ComponentSet set;
  for (int rep = 0; rep < 100; ++rep) {
    sample_failures(10, 7, rng, set);
    EXPECT_EQ(set.count(), 7);
  }
}

TEST(Sampling, ZeroFailuresLeavesEverythingUp) {
  util::Rng rng(2);
  analytic::ComponentSet set;
  set.set(3);
  sample_failures(10, 0, rng, set);
  EXPECT_EQ(set.count(), 0);  // clear happened
}

TEST(Estimator, DeterministicForFixedSeed) {
  EstimateOptions options;
  options.iterations = 10000;
  options.seed = 77;
  const Estimate a = estimate_p_success(12, 3, options);
  const Estimate b = estimate_p_success(12, 3, options);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.p, b.p);
}

TEST(Estimator, DifferentSeedsDiffer) {
  EstimateOptions a_options, b_options;
  a_options.iterations = b_options.iterations = 10000;
  a_options.seed = 1;
  b_options.seed = 2;
  EXPECT_NE(estimate_p_success(12, 3, a_options).successes,
            estimate_p_success(12, 3, b_options).successes);
}

TEST(Estimator, ThreadCountInvariant) {
  EstimateOptions base;
  base.iterations = 20000;
  base.seed = 99;
  base.block_size = 1024;
  base.threads = 1;
  const Estimate single = estimate_p_success(16, 4, base);
  for (unsigned threads : {2u, 4u, 8u}) {
    EstimateOptions options = base;
    options.threads = threads;
    const Estimate parallel = estimate_p_success(16, 4, options);
    EXPECT_EQ(parallel.successes, single.successes) << threads << " threads";
  }
}

TEST(Estimator, BlockSizeInvariantWouldBreak) {
  // Document the contract: block size is part of the deterministic stream
  // layout, so changing it changes (slightly) which trials run. The estimate
  // must still agree within statistical noise.
  EstimateOptions a_options;
  a_options.iterations = 50000;
  a_options.seed = 5;
  a_options.block_size = 1000;
  EstimateOptions b_options = a_options;
  b_options.block_size = 7777;
  const double pa = estimate_p_success(16, 4, a_options).p;
  const double pb = estimate_p_success(16, 4, b_options).p;
  EXPECT_NEAR(pa, pb, 0.01);
}

class EstimatorAccuracy
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(EstimatorAccuracy, WithinWilsonIntervalOfEquation1) {
  const auto [nodes, failures] = GetParam();
  EstimateOptions options;
  options.iterations = 40000;
  options.seed = 1234;
  const Estimate estimate = estimate_p_success(nodes, failures, options);
  const double truth = analytic::p_success(nodes, failures);
  // 95 % Wilson interval at 40k trials; allow the rare miss by widening 1.5x.
  const double slack = 1.5 * (estimate.wilson95.hi - estimate.wilson95.lo) / 2;
  EXPECT_NEAR(estimate.p, truth, std::max(slack, 1e-3))
      << "N=" << nodes << " f=" << failures;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorAccuracy,
    ::testing::Values(std::tuple{4, 2}, std::tuple{8, 2}, std::tuple{8, 4},
                      std::tuple{16, 3}, std::tuple{24, 5}, std::tuple{32, 4},
                      std::tuple{48, 2}, std::tuple{63, 10}));

// Property-based cross-check against the exhaustive enumeration (rather than
// the closed form): for every small (N, f) the sampled estimate must bracket
// the exact subset count's probability with its own Wilson interval. This
// ties the sampler to the ground-truth `pair_connected` semantics with no
// algebra in between.
class EstimatorVsEnumeration
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(EstimatorVsEnumeration, ExactProbabilityInsideWilsonInterval) {
  const auto [nodes, failures] = GetParam();
  const double exact =
      analytic::enumerate_success_count(nodes, failures).probability();
  EstimateOptions options;
  options.iterations = 40000;
  options.seed = 0xE9;  // fixed: the assertion is deterministic, not flaky
  const Estimate estimate = estimate_p_success(nodes, failures, options);
  // Widen the 95 % interval slightly so a legitimate ~2σ draw on one of the
  // 25 grid points cannot fail the suite.
  const double slack =
      0.5 * (estimate.wilson95.hi - estimate.wilson95.lo) + 1e-9;
  EXPECT_GE(exact, estimate.wilson95.lo - slack)
      << "N=" << nodes << " f=" << failures << " p=" << estimate.p;
  EXPECT_LE(exact, estimate.wilson95.hi + slack)
      << "N=" << nodes << " f=" << failures << " p=" << estimate.p;
}

INSTANTIATE_TEST_SUITE_P(Grid, EstimatorVsEnumeration,
                         ::testing::Combine(::testing::Range<std::int64_t>(4, 9),
                                            ::testing::Range<std::int64_t>(1,
                                                                           6)));

TEST(Estimator, SystemSuccessThreadCountInvariant) {
  // Same block-determinism contract for the all-pairs criterion: the successes
  // count is bit-identical for 1, 2 and 8 workers.
  EstimateOptions base;
  base.iterations = 20000;
  base.seed = 424242;
  base.block_size = 512;
  base.threads = 1;
  const Estimate single = estimate_system_success(12, 4, base);
  EXPECT_GT(single.successes, 0u);
  for (unsigned threads : {2u, 8u}) {
    EstimateOptions options = base;
    options.threads = threads;
    const Estimate parallel = estimate_system_success(12, 4, options);
    EXPECT_EQ(parallel.successes, single.successes) << threads << " threads";
    EXPECT_EQ(parallel.p, single.p) << threads << " threads";
  }
}

TEST(Estimator, ExactForDegenerateCases) {
  EstimateOptions options;
  options.iterations = 2000;
  EXPECT_DOUBLE_EQ(estimate_p_success(8, 0, options).p, 1.0);
  EXPECT_DOUBLE_EQ(estimate_p_success(8, 1, options).p, 1.0);
  EXPECT_DOUBLE_EQ(estimate_p_success(8, 18, options).p, 0.0);  // all dead
}

TEST(Convergence, DeviationShrinksWithIterations) {
  // The Fig. 3 property: MAD decreases (strongly) from 10 to 100k iterations.
  const ConvergencePoint coarse = convergence_point(3, 10, 32, 42, 1);
  const ConvergencePoint fine = convergence_point(3, 100000, 32, 42, 1);
  EXPECT_LT(fine.mean_abs_deviation, coarse.mean_abs_deviation / 5);
  EXPECT_LT(fine.mean_abs_deviation, 0.005);
}

TEST(Convergence, ThousandIterationsAlreadyTight) {
  // The paper reports a small MAD at 1,000 iterations for every f.
  for (std::int64_t f : {2, 5, 10}) {
    const ConvergencePoint point = convergence_point(f, 1000, 64, 7, 1);
    EXPECT_LT(point.mean_abs_deviation, 0.02) << "f=" << f;
  }
}

TEST(Convergence, SweepShapeMatchesRequest) {
  ConvergenceOptions options;
  options.failure_counts = {2, 3};
  options.iteration_counts = {10, 100};
  options.n_limit = 16;
  const auto points = run_convergence(options);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].failures, 2);
  EXPECT_EQ(points[0].iterations, 10u);
  EXPECT_EQ(points[3].failures, 3);
  EXPECT_EQ(points[3].iterations, 100u);
}

TEST(Convergence, MaxDeviationBoundsMean) {
  const ConvergencePoint point = convergence_point(4, 500, 32, 11, 1);
  EXPECT_GE(point.max_abs_deviation, point.mean_abs_deviation);
}

}  // namespace
}  // namespace drs::mc
