// Unit coverage of the obs layer: the tracer ring (lazy allocation, oldest
// eviction, chronological iteration), the DRS_TRACE_EVENT macro contract,
// both exporters' byte-level output, the integer metric registry, and the
// failover-timeline / detour-audit folds. The cross-layer pins live here
// too: obs's link-state codes must stay numerically identical to
// core::LinkState so traces stay readable without the core headers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/link_state.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"
#include "sim/simulator.hpp"

namespace drs::obs {
namespace {

TraceEvent at(std::int64_t t, TraceEventKind kind) {
  return TraceEvent{.at_ns = t, .kind = kind};
}

// --- Tracer ring -------------------------------------------------------------

TEST(Tracer, RetainsEmissionOrderBelowCapacity) {
  Tracer tracer(8);
  for (std::int64_t t = 0; t < 5; ++t) {
    tracer.emit(at(t, TraceEventKind::kPingSent));
  }
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.emitted(), 5u);
  EXPECT_EQ(tracer.evicted(), 0u);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::int64_t t = 0; t < 5; ++t) EXPECT_EQ(events[static_cast<std::size_t>(t)].at_ns, t);
}

TEST(Tracer, EvictsOldestWhenFull) {
  Tracer tracer(4);
  for (std::int64_t t = 0; t < 10; ++t) {
    tracer.emit(at(t, TraceEventKind::kPingSent));
  }
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.size(), 4u);       // never exceeds capacity
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.evicted(), 6u);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, still oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].at_ns, static_cast<std::int64_t>(6 + i));
  }
}

TEST(Tracer, ZeroCapacityClampsToOne) {
  Tracer tracer(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  tracer.emit(at(1, TraceEventKind::kPingSent));
  tracer.emit(at(2, TraceEventKind::kPingSent));
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events().front().at_ns, 2);
}

TEST(Tracer, FirstSinceFiltersByTimeAndKind) {
  Tracer tracer(16);
  tracer.emit(at(10, TraceEventKind::kProbeLost));
  tracer.emit(at(20, TraceEventKind::kPingSent));
  tracer.emit(at(30, TraceEventKind::kProbeLost));
  const TraceEvent* any = tracer.first_since(15);
  ASSERT_NE(any, nullptr);
  EXPECT_EQ(any->at_ns, 20);
  const TraceEvent* probe =
      tracer.first_since(15, {TraceEventKind::kProbeLost});
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->at_ns, 30);
  EXPECT_EQ(tracer.first_since(31), nullptr);
}

TEST(Tracer, ClearDropsEventsButKeepsCounters) {
  Tracer tracer(4);
  for (std::int64_t t = 0; t < 6; ++t) {
    tracer.emit(at(t, TraceEventKind::kPingSent));
  }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 6u);
  tracer.emit(at(100, TraceEventKind::kPingSent));
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.events().front().at_ns, 100);
}

TEST(Tracer, RingAllocationIsLazyAndCountedOnce) {
  const std::uint64_t before = Tracer::rings_allocated();
  Tracer tracer(8);
  EXPECT_EQ(Tracer::rings_allocated(), before) << "construction must not allocate";
  tracer.emit(at(1, TraceEventKind::kPingSent));
  EXPECT_EQ(Tracer::rings_allocated(), before + 1);
  tracer.emit(at(2, TraceEventKind::kPingSent));
  EXPECT_EQ(Tracer::rings_allocated(), before + 1) << "one ring per tracer";
}

// --- DRS_TRACE_EVENT macro ---------------------------------------------------

static_assert(DRS_OBS_ENABLED == 1,
              "this test file is built with tracing enabled");

TEST(TraceMacro, NullTracerIsSafe) {
  Tracer* tracer = nullptr;
  DRS_TRACE_EVENT(tracer, .at_ns = 1, .kind = TraceEventKind::kPingSent);
  SUCCEED();
}

TEST(TraceMacro, RespectsRuntimeEnableSwitch) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  DRS_TRACE_EVENT(&tracer, .at_ns = 1, .kind = TraceEventKind::kPingSent);
  EXPECT_EQ(tracer.emitted(), 0u);
  tracer.set_enabled(true);
  DRS_TRACE_EVENT(&tracer, .at_ns = 2, .kind = TraceEventKind::kProbeLost,
                  .node = 3, .peer = 4, .network = 1, .a = 7, .b = 9);
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent event = tracer.events().front();
  EXPECT_EQ(event.at_ns, 2);
  EXPECT_EQ(event.kind, TraceEventKind::kProbeLost);
  EXPECT_EQ(event.node, 3);
  EXPECT_EQ(event.peer, 4);
  EXPECT_EQ(event.network, 1);
  EXPECT_EQ(event.a, 7);
  EXPECT_EQ(event.b, 9);
}

// A live DrsSystem with no tracer attached must not allocate any ring —
// the runtime-off half of the overhead regression (the compile-time-off
// half lives in test_obs_compiled_out).
TEST(TraceMacro, SystemWithoutTracerAllocatesNoRings) {
  const std::uint64_t before = Tracer::rings_allocated();
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  core::DrsConfig config;
  config.probe_interval = util::Duration::millis(50);
  config.probe_timeout = util::Duration::millis(20);
  core::DrsSystem system(network, config);
  system.start();
  sim.run_for(util::Duration::millis(300));
  system.stop();
  EXPECT_EQ(Tracer::rings_allocated(), before);
}

// --- Cross-layer code pins ---------------------------------------------------

TEST(EventCodes, LinkStateCodesMatchCore) {
  EXPECT_EQ(kLinkUp, static_cast<std::int64_t>(core::LinkState::kUp));
  EXPECT_EQ(kLinkSuspect, static_cast<std::int64_t>(core::LinkState::kSuspect));
  EXPECT_EQ(kLinkDown, static_cast<std::int64_t>(core::LinkState::kDown));
}

TEST(EventCodes, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceEventKind::kPingSent), "ping_sent");
  EXPECT_STREQ(to_string(TraceEventKind::kProbeLost), "probe_lost");
  EXPECT_STREQ(to_string(TraceEventKind::kLinkChange), "link_change");
  EXPECT_STREQ(to_string(TraceEventKind::kDetourInstall), "detour_install");
  EXPECT_STREQ(to_string(TraceEventKind::kDetourTeardown), "detour_teardown");
  EXPECT_STREQ(to_string(TraceEventKind::kQueueHighWater), "queue_high_water");
}

// --- Exporters ---------------------------------------------------------------

TEST(Export, CanonicalJsonIsByteStable) {
  const std::vector<TraceEvent> events{
      TraceEvent{.at_ns = 1500,
                 .kind = TraceEventKind::kLinkChange,
                 .node = 2,
                 .peer = 3,
                 .network = 1,
                 .a = kLinkUp,
                 .b = kLinkDown}};
  EXPECT_EQ(to_canonical_json(events),
            "{\"format\":\"drs-trace-v1\",\"count\":1,\"events\":"
            "[{\"t\":1500,\"kind\":\"link_change\",\"node\":2,\"peer\":3,"
            "\"net\":1,\"a\":0,\"b\":2}]}");
}

TEST(Export, SentinelFieldsRenderAsMinusOne) {
  const std::vector<TraceEvent> events{
      TraceEvent{.at_ns = 0, .kind = TraceEventKind::kQueueHighWater,
                 .a = 16, .b = 16}};
  EXPECT_EQ(to_canonical_json(events),
            "{\"format\":\"drs-trace-v1\",\"count\":1,\"events\":"
            "[{\"t\":0,\"kind\":\"queue_high_water\",\"node\":-1,\"peer\":-1,"
            "\"net\":-1,\"a\":16,\"b\":16}]}");
}

TEST(Export, ChromeTraceCarriesInstantEventsPerNodeTrack) {
  const std::vector<TraceEvent> events{
      TraceEvent{.at_ns = 1500,
                 .kind = TraceEventKind::kProbeLost,
                 .node = 2,
                 .peer = 3,
                 .network = 0,
                 .a = 42}};
  const std::string json = to_chrome_trace_json(events);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"probe_lost\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);  // 1500 ns -> 1 us
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"t_ns\":1500"), std::string::npos);  // full precision
}

TEST(Export, FilterKindsPreservesOrder) {
  std::vector<TraceEvent> events;
  events.push_back(at(1, TraceEventKind::kPingSent));
  events.push_back(at(2, TraceEventKind::kProbeLost));
  events.push_back(at(3, TraceEventKind::kPingSent));
  events.push_back(at(4, TraceEventKind::kLinkChange));
  const std::vector<TraceEvent> filtered = filter_kinds(
      events, {TraceEventKind::kProbeLost, TraceEventKind::kLinkChange});
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].at_ns, 2);
  EXPECT_EQ(filtered[1].at_ns, 4);
}

// --- Metric registry ---------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  MetricRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.counter("a").add();
  registry.counter("a").add(4);
  registry.gauge("g").set(7);
  registry.gauge("g").set(-2);
  EXPECT_EQ(registry.counter("a").value(), 5);
  EXPECT_EQ(registry.gauge("g").value(), -2);
  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Metrics, HistogramUsesInclusiveUpperEdges) {
  MetricRegistry registry;
  IntHistogram& h = registry.histogram("h", {10, 20});
  h.add(10);  // lands in the <=10 bucket
  h.add(11);  // lands in the <=20 bucket
  h.add(20);
  h.add(21);  // beyond the last edge: overflow bucket
  ASSERT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 62);
  // Re-lookup returns the same histogram; new edges are ignored.
  EXPECT_EQ(&registry.histogram("h", {999}), &h);
  EXPECT_EQ(h.edges().size(), 2u);
}

TEST(Metrics, ScopedNamingConvention) {
  EXPECT_EQ(MetricRegistry::scoped("daemon", 3, "probes_sent"),
            "daemon.3.probes_sent");
  EXPECT_EQ(MetricRegistry::scoped("backplane", 0, "frames"),
            "backplane.0.frames");
}

TEST(Metrics, JsonIsSortedAndByteStable) {
  MetricRegistry registry;
  registry.counter("z").add(1);
  registry.counter("a").add(2);
  registry.gauge("g").set(3);
  registry.histogram("h", {5}).add(7);
  EXPECT_EQ(registry.to_json(),
            "{\"counters\":{\"a\":2,\"z\":1},\"gauges\":{\"g\":3},"
            "\"histograms\":{\"h\":{\"edges\":[5],\"counts\":[0,1],"
            "\"count\":1,\"sum\":7}}}");
}

// --- Failover timelines and the detour audit ---------------------------------

TEST(Timeline, ReconstructPicksFirstLandmarkOfEachKind) {
  std::vector<TraceEvent> events;
  events.push_back(at(50, TraceEventKind::kProbeLost));   // pre-failure: ignored
  events.push_back(at(120, TraceEventKind::kProbeLost));  // detection
  events.push_back(at(150, TraceEventKind::kProbeLost));  // later loss: ignored
  TraceEvent down = at(180, TraceEventKind::kLinkChange);
  down.a = kLinkSuspect;
  down.b = kLinkDown;
  events.push_back(down);
  events.push_back(at(200, TraceEventKind::kDetourInstall));
  const FailoverTimeline timeline = reconstruct_failover(events, 100, 400);
  EXPECT_TRUE(timeline.detected());
  EXPECT_TRUE(timeline.rerouted());
  EXPECT_EQ(timeline.detected_at_ns, 120);
  EXPECT_EQ(timeline.link_down_at_ns, 180);
  EXPECT_EQ(timeline.detour_at_ns, 200);
  EXPECT_EQ(timeline.detection_latency_ns(), 20);
  EXPECT_EQ(timeline.repair_latency_ns(), 280);  // from detection, not injection
}

TEST(Timeline, WithoutDetectionLatencyFallsBackToInjection) {
  const FailoverTimeline timeline =
      reconstruct_failover(std::vector<TraceEvent>{}, 100, 400);
  EXPECT_FALSE(timeline.detected());
  EXPECT_EQ(timeline.detection_latency_ns(), 0);
  EXPECT_EQ(timeline.repair_latency_ns(), 300);
}

TraceEvent pair_event(std::int64_t t, TraceEventKind kind, std::uint16_t node,
                      std::uint16_t peer) {
  return TraceEvent{.at_ns = t, .kind = kind, .node = node, .peer = peer};
}

TraceEvent down_event(std::int64_t t, std::uint16_t node, std::uint16_t peer) {
  TraceEvent event = pair_event(t, TraceEventKind::kLinkChange, node, peer);
  event.a = kLinkSuspect;
  event.b = kLinkDown;
  return event;
}

TEST(DetourAudit, CleanAlternationPasses) {
  std::vector<TraceEvent> events;
  events.push_back(down_event(10, 0, 1));
  events.push_back(pair_event(20, TraceEventKind::kDetourInstall, 0, 1));
  events.push_back(pair_event(30, TraceEventKind::kDetourSwitch, 0, 1));
  events.push_back(pair_event(40, TraceEventKind::kDetourTeardown, 0, 1));
  events.push_back(down_event(50, 0, 1));  // a second, separate episode
  events.push_back(pair_event(60, TraceEventKind::kDetourInstall, 0, 1));
  events.push_back(pair_event(70, TraceEventKind::kDetourTeardown, 0, 1));
  EXPECT_TRUE(audit_detours(events).empty());
}

TEST(DetourAudit, InstallWithoutDownVerdictIsFlagged) {
  std::vector<TraceEvent> events;
  events.push_back(pair_event(20, TraceEventKind::kDetourInstall, 0, 1));
  events.push_back(pair_event(40, TraceEventKind::kDetourTeardown, 0, 1));
  const std::vector<std::string> problems = audit_detours(events);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("without preceding link DOWN"), std::string::npos);
  EXPECT_NE(problems[0].find("node 0 peer 1"), std::string::npos);
}

TEST(DetourAudit, DoubleInstallAndStrayTeardownAreFlagged) {
  std::vector<TraceEvent> events;
  events.push_back(down_event(10, 0, 1));
  events.push_back(pair_event(20, TraceEventKind::kDetourInstall, 0, 1));
  events.push_back(pair_event(25, TraceEventKind::kDetourInstall, 0, 1));
  events.push_back(pair_event(40, TraceEventKind::kDetourTeardown, 0, 1));
  events.push_back(pair_event(50, TraceEventKind::kDetourTeardown, 0, 1));
  events.push_back(pair_event(60, TraceEventKind::kDetourSwitch, 0, 1));
  const std::vector<std::string> problems = audit_detours(events);
  // while-open install, teardown with no episode, switch with no episode,
  // and a 2-vs-2... installs==teardowns so no imbalance: 3 problems.
  EXPECT_EQ(problems.size(), 3u);
}

TEST(DetourAudit, OpenEpisodeAtEndFlaggedOnlyWhenExpectClosed) {
  std::vector<TraceEvent> events;
  events.push_back(down_event(10, 2, 3));
  events.push_back(pair_event(20, TraceEventKind::kDetourInstall, 2, 3));
  const std::vector<std::string> problems = audit_detours(events);
  ASSERT_EQ(problems.size(), 2u);  // still open + install/teardown imbalance
  EXPECT_NE(problems[0].find("still open"), std::string::npos);
  EXPECT_TRUE(audit_detours(events, /*expect_closed=*/false).empty());
}

TEST(DetourAudit, PairsAreIndependent) {
  std::vector<TraceEvent> events;
  events.push_back(down_event(10, 0, 1));
  // Node 1 installing against peer 0 must not inherit node 0's DOWN verdict.
  events.push_back(pair_event(20, TraceEventKind::kDetourInstall, 1, 0));
  events.push_back(pair_event(30, TraceEventKind::kDetourTeardown, 1, 0));
  const std::vector<std::string> problems = audit_detours(events);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("node 1 peer 0"), std::string::npos);
}

}  // namespace
}  // namespace drs::obs
