#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

namespace drs::cost {
namespace {

using namespace drs::util::literals;

TEST(EchoFrame, MinimumFrameWithoutOverhead) {
  EchoFrameModel frame;
  // 14 + 20 + 8 + 0 + 4 = 46 -> padded to the 64-byte minimum.
  EXPECT_EQ(frame.frame_bytes(), 64u);
  EXPECT_EQ(frame.frame_bits(), 512u);
}

TEST(EchoFrame, PreambleAndIfgAddTwenty) {
  EchoFrameModel frame;
  frame.count_preamble_and_ifg = true;
  EXPECT_EQ(frame.frame_bytes(), 84u);
}

TEST(EchoFrame, LargePayloadEscapesMinimum) {
  EchoFrameModel frame;
  frame.echo_data_bytes = 56;  // classic `ping` default
  // 14 + 20 + 8 + 56 + 4 = 102.
  EXPECT_EQ(frame.frame_bytes(), 102u);
}

TEST(CostModel, CycleFrameCount) {
  CostModel model;
  // Every ordered pair probes once; request + reply.
  EXPECT_EQ(model.cycle_frames(2), 4u);
  EXPECT_EQ(model.cycle_frames(10), 180u);
  EXPECT_EQ(model.cycle_frames(90), 16020u);
}

TEST(CostModel, PaperAnchorNinetyHostsTenPercentUnderOneSecond) {
  // "ninety hosts are supported in less than 1 second with only 10% of the
  // bandwidth usage" — the Fig. 1 anchor.
  CostModel model;
  const double t = model.response_time_seconds(90, 0.10);
  EXPECT_LT(t, 1.0);
  EXPECT_GT(t, 0.7);  // and not trivially fast: ~0.82 s
  EXPECT_NEAR(t, 0.820224, 1e-6);
}

TEST(CostModel, AnchorFailsJustAboveNinetyFour) {
  // The boundary: max_nodes at (10 %, 1 s) is deterministic.
  CostModel model;
  const std::int64_t limit = model.max_nodes(0.10, 1.0);
  EXPECT_GE(limit, 90);
  EXPECT_LE(limit, 100);
  EXPECT_GT(model.response_time_seconds(limit + 1, 0.10), 1.0);
  EXPECT_LE(model.response_time_seconds(limit, 0.10), 1.0);
}

TEST(CostModel, ResponseTimeQuadraticInNodes) {
  CostModel model;
  const double t20 = model.response_time_seconds(20, 0.10);
  const double t40 = model.response_time_seconds(40, 0.10);
  // 2*40*39 / (2*20*19) = 4.105...
  EXPECT_NEAR(t40 / t20, 4.105, 0.01);
}

TEST(CostModel, ResponseTimeInverseInBudget) {
  CostModel model;
  EXPECT_NEAR(model.response_time_seconds(50, 0.05) /
                  model.response_time_seconds(50, 0.25),
              5.0, 1e-9);
}

TEST(CostModel, MoreBudgetNeverHurtsMaxNodes) {
  CostModel model;
  std::int64_t previous = 0;
  for (double budget : {0.05, 0.10, 0.15, 0.25}) {
    const std::int64_t n = model.max_nodes(budget, 1.0);
    EXPECT_GE(n, previous);
    previous = n;
  }
}

TEST(CostModel, UtilizationMatchesDefinition) {
  CostModel model;
  // 10 nodes every 100 ms: 180 frames * 512 bits = 92160 bits per cycle;
  // at 100 Mb/s that is 921.6 us busy per 100 ms -> 0.9216 %.
  EXPECT_NEAR(model.utilization(10, 100_ms), 0.009216, 1e-9);
}

TEST(CostModel, MeasuredUtilizationMatchesClosedForm) {
  CostModel model;
  const double predicted = model.utilization(8, 100_ms);
  const MeasuredCycle measured = measure_cycle(8, 100_ms, 5, model);
  // The packet level also carries echo *replies* from the daemons on the
  // other hosts probing back — the model's 2N(N-1) already counts both
  // directions, so they should agree within a couple of percent (start-up
  // transients, spread-probe phase).
  EXPECT_NEAR(measured.utilization_network_a, predicted, predicted * 0.05);
  EXPECT_NEAR(measured.utilization_network_b, predicted, predicted * 0.05);
  EXPECT_EQ(measured.probes_failed, 0u);
  EXPECT_GT(measured.probes_sent, 0u);
}

TEST(CostModel, MeasuredWithPreambleAccounting) {
  CostModel model;
  model.frame.count_preamble_and_ifg = true;
  const double predicted = model.utilization(6, 100_ms);
  const MeasuredCycle measured = measure_cycle(6, 100_ms, 5, model);
  EXPECT_NEAR(measured.utilization_network_a, predicted, predicted * 0.05);
}

TEST(CostModel, OverloadedIntervalLosesProbes) {
  // An interval far below the cycle's serialization demand saturates the
  // medium: probes queue up and some time out. 60 nodes need ~36 ms of
  // medium time per cycle; offering it every 4 ms cannot work.
  CostModel model;
  const MeasuredCycle measured = measure_cycle(60, 4_ms, 25, model);
  EXPECT_GT(measured.probes_failed, 0u);
  EXPECT_GT(measured.utilization_network_a, 0.5);
}

}  // namespace
}  // namespace drs::cost
