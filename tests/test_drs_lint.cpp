// drs-lint's own coverage: the fixture tree under tests/lint_fixtures/ makes
// every rule fire with known counts and exercises the suppression machinery,
// and the real tree must lint clean — so inserting, say, a
// std::random_device into src/core/daemon.cpp fails this test.
//
// The binary and paths arrive via compile definitions (see tests/CMakeLists):
//   DRS_LINT_BIN       absolute path to the drs-lint executable
//   DRS_LINT_ROOT      the repository root (real-tree run)
//   DRS_LINT_FIXTURES  tests/lint_fixtures
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run(const std::string& cmd) {
  RunResult result;
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture_cmd() {
  return std::string(DRS_LINT_BIN) + " --root " + DRS_LINT_FIXTURES +
         " --config " + DRS_LINT_FIXTURES + "/lint.conf --json --quiet";
}

/// Counts finding objects in the JSON report per (rule, suppressed) by
/// walking the canonical key order the report writes: rule first,
/// suppressed later in the same object.
std::map<std::pair<std::string, bool>, int> tally(const std::string& json) {
  std::map<std::pair<std::string, bool>, int> counts;
  const std::string marker = "{\"rule\":\"";
  std::size_t pos = json.find(marker);
  while (pos != std::string::npos) {
    const std::size_t rule_begin = pos + marker.size();
    const std::size_t rule_end = json.find('"', rule_begin);
    const std::size_t obj_end = json.find('}', pos);
    if (rule_end == std::string::npos || obj_end == std::string::npos) break;
    const std::string rule = json.substr(rule_begin, rule_end - rule_begin);
    const bool suppressed =
        json.find("\"suppressed\":true", pos) < obj_end;
    ++counts[{rule, suppressed}];
    pos = json.find(marker, obj_end);
  }
  return counts;
}

}  // namespace

TEST(DrsLint, FixtureTreeFiresEveryRuleWithExactCounts) {
  const RunResult result = run(fixture_cmd());
  ASSERT_EQ(result.exit_code, 1) << result.out;

  const auto counts = tally(result.out);
  const std::map<std::pair<std::string, bool>, int> expected = {
      {{"banned", false}, 6},     {{"banned", true}, 1},
      {{"unordered", false}, 1},  {{"unordered", true}, 1},
      {{"pragma-once", false}, 1},
      {{"using-namespace", false}, 1},
      {{"float", false}, 1},
      {{"raw-new", false}, 2},
      {{"hotpath-alloc", false}, 4}, {{"hotpath-alloc", true}, 2},
      {{"nodiscard", false}, 1},
      {{"bad-suppression", false}, 2},
      {{"layer", false}, 1},
      {{"cycle", false}, 1},
      {{"dead-header", false}, 1},
  };
  EXPECT_EQ(counts, expected) << result.out;
  EXPECT_NE(result.out.find("\"total\":26"), std::string::npos);
  EXPECT_NE(result.out.find("\"suppressed\":4"), std::string::npos);
  EXPECT_NE(result.out.find("\"unsuppressed\":22"), std::string::npos);
}

TEST(DrsLint, FindingsCarryFileLineAndRule) {
  const RunResult result = run(fixture_cmd());
  // Spot-check anchors for each family: determinism, layering, hygiene.
  EXPECT_NE(result.out.find("\"rule\":\"banned\",\"file\":\"src/core/banned.cpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"layer\",\"file\":\"src/layer_a/a.hpp\",\"line\":5"),
            std::string::npos);
  EXPECT_NE(result.out.find("src/cyc/x.hpp -> src/cyc/y.hpp"), std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"dead-header\",\"file\":\"src/dead/orphan.hpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"pragma-once\",\"file\":\"src/core/no_pragma.hpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"hotpath-alloc\",\"file\":\"src/net/hotpath.cpp\""),
            std::string::npos);
  // The file-override hot-path module (core/soa_table -> peertable) is
  // enforced even though the file lives under a non-hot-path directory.
  EXPECT_NE(result.out.find("\"rule\":\"hotpath-alloc\",\"file\":\"src/core/soa_table.cpp\""),
            std::string::npos);
}

TEST(DrsLint, SuppressionsCarryTheirReason) {
  const RunResult result = run(fixture_cmd());
  // The well-formed suppression surfaces as a suppressed finding with its
  // reason; the allowlisted util/rng file produces no finding at all.
  EXPECT_NE(result.out.find("fixture proves suppression machinery"),
            std::string::npos);
  EXPECT_EQ(result.out.find("rng_helpers"), std::string::npos);
  // Malformed suppressions are findings, not silent no-ops.
  EXPECT_NE(result.out.find("needs a non-empty reason"), std::string::npos);
  EXPECT_NE(result.out.find("unknown rule 'nosuchrule'"), std::string::npos);
}

TEST(DrsLint, ReportIsDeterministic) {
  const RunResult a = run(fixture_cmd());
  const RunResult b = run(fixture_cmd());
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.exit_code, b.exit_code);
}

TEST(DrsLint, RuleCatalogIsStable) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --list-rules");
  ASSERT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"banned", "unordered", "layer", "cycle", "dead-header", "pragma-once",
        "using-namespace", "float", "raw-new", "hotpath-alloc", "nodiscard",
        "bad-suppression"}) {
    EXPECT_NE(result.out.find(rule), std::string::npos) << rule;
  }
}

TEST(DrsLint, RealTreeLintsClean) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --root " +
                               DRS_LINT_ROOT + " --json --quiet");
  EXPECT_EQ(result.exit_code, 0) << result.out;
  EXPECT_NE(result.out.find("\"unsuppressed\":0"), std::string::npos)
      << result.out;
}

TEST(DrsLint, BadConfigIsAUsageError) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --root " +
                               DRS_LINT_FIXTURES + " --config /nonexistent");
  EXPECT_EQ(result.exit_code, 2);
}
