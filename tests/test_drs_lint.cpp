// drs-lint's own coverage: the fixture tree under tests/lint_fixtures/ makes
// every rule fire with known counts and exercises the suppression machinery,
// and the real tree must lint clean — so inserting, say, a
// std::random_device into src/core/daemon.cpp fails this test.
//
// The injection tests prove the v2 cross-TU rules bite on the *real* tree:
// a scratch copy of the repository is mutated (a static counter into
// src/sim, an allocating call into a hot-path-reachable function) and the
// lint run over the copy must fail with the right rule and call chain.
//
// The binary and paths arrive via compile definitions (see tests/CMakeLists):
//   DRS_LINT_BIN       absolute path to the drs-lint executable
//   DRS_LINT_ROOT      the repository root (real-tree run)
//   DRS_LINT_FIXTURES  tests/lint_fixtures
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run(const std::string& cmd) {
  RunResult result;
  FILE* pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string fixture_cmd() {
  return std::string(DRS_LINT_BIN) + " --root " + DRS_LINT_FIXTURES +
         " --config " + DRS_LINT_FIXTURES + "/lint.conf --json --quiet";
}

/// Counts finding objects in the JSON report per (rule, suppressed) by
/// walking the canonical key order the report writes: rule first,
/// suppressed later in the same object.
std::map<std::pair<std::string, bool>, int> tally(const std::string& json) {
  std::map<std::pair<std::string, bool>, int> counts;
  const std::string marker = "{\"rule\":\"";
  std::size_t pos = json.find(marker);
  while (pos != std::string::npos) {
    const std::size_t rule_begin = pos + marker.size();
    const std::size_t rule_end = json.find('"', rule_begin);
    const std::size_t obj_end = json.find('}', pos);
    if (rule_end == std::string::npos || obj_end == std::string::npos) break;
    const std::string rule = json.substr(rule_begin, rule_end - rule_begin);
    const bool suppressed =
        json.find("\"suppressed\":true", pos) < obj_end;
    ++counts[{rule, suppressed}];
    pos = json.find(marker, obj_end);
  }
  return counts;
}

/// Copies the enforced and reference trees of the real repository into a
/// scratch root so injection tests can mutate sources freely. The reference
/// trees (tests/bench/examples) must come along or dead-header would fire
/// on headers only included from tests.
std::string scratch_tree(const std::string& tag) {
  const std::string root = std::string("/tmp/drs_lint_scratch_") + tag;
  const std::string src = DRS_LINT_ROOT;
  run("rm -rf " + root + " && mkdir -p " + root + "/tools");
  for (const char* tree : {"src", "tests", "bench", "examples"}) {
    run("cp -r " + src + "/" + tree + " " + root + "/" + tree);
  }
  run("cp -r " + src + "/tools/lint " + root + "/tools/lint");
  return root;
}

std::string lint_root_cmd(const std::string& root) {
  return std::string(DRS_LINT_BIN) + " --root " + root + " --json --quiet";
}

}  // namespace

TEST(DrsLint, FixtureTreeFiresEveryRuleWithExactCounts) {
  const RunResult result = run(fixture_cmd());
  ASSERT_EQ(result.exit_code, 1) << result.out;

  const auto counts = tally(result.out);
  const std::map<std::pair<std::string, bool>, int> expected = {
      {{"banned", false}, 6},     {{"banned", true}, 1},
      {{"unordered", false}, 1},  {{"unordered", true}, 1},
      {{"pragma-once", false}, 1},
      {{"using-namespace", false}, 1},
      {{"float", false}, 1},
      {{"raw-new", false}, 2},
      {{"shared-state", false}, 4}, {{"shared-state", true}, 1},
      {{"hotpath-purity", false}, 4}, {{"hotpath-purity", true}, 1},
      {{"unordered-flow", false}, 1}, {{"unordered-flow", true}, 1},
      {{"nodiscard", false}, 1},
      {{"bad-suppression", false}, 3},
      {{"layer", false}, 1},
      {{"cycle", false}, 1},
      {{"dead-header", false}, 1},
  };
  EXPECT_EQ(counts, expected) << result.out;
  EXPECT_NE(result.out.find("\"total\":33"), std::string::npos);
  EXPECT_NE(result.out.find("\"suppressed\":5"), std::string::npos);
  EXPECT_NE(result.out.find("\"unsuppressed\":28"), std::string::npos);
}

TEST(DrsLint, FindingsCarryFileLineAndRule) {
  const RunResult result = run(fixture_cmd());
  // Spot-check anchors for each family: determinism, layering, hygiene.
  EXPECT_NE(result.out.find("\"rule\":\"banned\",\"file\":\"src/core/banned.cpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"layer\",\"file\":\"src/layer_a/a.hpp\",\"line\":5"),
            std::string::npos);
  EXPECT_NE(result.out.find("src/cyc/x.hpp -> src/cyc/y.hpp"), std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"dead-header\",\"file\":\"src/dead/orphan.hpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find("\"rule\":\"pragma-once\",\"file\":\"src/core/no_pragma.hpp\""),
            std::string::npos);
  // Every static-storage flavour is named in its shared-state finding.
  EXPECT_NE(result.out.find("namespace-scope global 'fixture::g_mutable_counter'"),
            std::string::npos);
  EXPECT_NE(result.out.find("static data member 'fixture::Stats::total_'"),
            std::string::npos);
  EXPECT_NE(result.out.find("function-local static 'fixture::calls'"),
            std::string::npos);
  EXPECT_NE(result.out.find("thread_local 'fixture::t_scratch'"),
            std::string::npos);
  // The const global is exempt.
  EXPECT_EQ(result.out.find("kConfigLimit"), std::string::npos);
}

TEST(DrsLint, HotpathPurityWalksTheCallGraph) {
  const RunResult result = run(fixture_cmd());
  // Direct callee of a hot entry: the chain names both hops.
  EXPECT_NE(result.out.find("\"rule\":\"hotpath-purity\",\"file\":\"src/net/hotpath.cpp\""),
            std::string::npos);
  EXPECT_NE(result.out.find(
                "\"chain\":[\"fixture::Engine::dispatch\",\"fixture::Engine::enqueue\"]"),
            std::string::npos);
  // Multi-hop chain through the file-override module: sweep -> compact -> grow.
  EXPECT_NE(result.out.find("\"rule\":\"hotpath-purity\",\"file\":\"src/core/soa_table.cpp\""),
            std::string::npos);
  EXPECT_NE(
      result.out.find("fixture::SoaTable::sweep -> fixture::SoaTable::compact "
                      "-> fixture::SoaTable::grow"),
      std::string::npos);
  // cold_audit is reachable only through an annotated call site, so the
  // edge is pruned and its push_back never appears.
  EXPECT_EQ(result.out.find("cold_audit"), std::string::npos);
}

TEST(DrsLint, UnorderedFlowConnectsIterationToSinks) {
  const RunResult result = run(fixture_cmd());
  EXPECT_NE(result.out.find("iteration over annotated unordered container "
                            "'annotated' in 'fixture::dump_fleet'"),
            std::string::npos);
  EXPECT_NE(result.out.find("\"chain\":[\"fixture::dump_fleet\",\"fixture::emit_json\"]"),
            std::string::npos);
  // count_fleet iterates the same container but reaches no sink: clean.
  EXPECT_EQ(result.out.find("count_fleet"), std::string::npos);
}

TEST(DrsLint, SuppressionsCarryTheirReason) {
  const RunResult result = run(fixture_cmd());
  // The well-formed suppression surfaces as a suppressed finding with its
  // reason; the allowlisted util/rng file produces no finding at all, for
  // either the banned or the shared-state rule.
  EXPECT_NE(result.out.find("fixture proves suppression machinery"),
            std::string::npos);
  EXPECT_NE(result.out.find("fixture proves shared-state suppression works"),
            std::string::npos);
  EXPECT_EQ(result.out.find("rng_helpers"), std::string::npos);
  EXPECT_EQ(result.out.find("g_entropy_calls"), std::string::npos);
  // Malformed suppressions are findings, not silent no-ops — including a
  // typo'd rule token, which must never quietly cover nothing.
  EXPECT_NE(result.out.find("needs a non-empty reason"), std::string::npos);
  EXPECT_NE(result.out.find("unknown rule 'nosuchrule'"), std::string::npos);
  EXPECT_NE(result.out.find("malformed suppression 'shared-state-okay'"),
            std::string::npos);
}

TEST(DrsLint, ReportIsDeterministic) {
  const RunResult a = run(fixture_cmd());
  const RunResult b = run(fixture_cmd());
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.exit_code, b.exit_code);
}

TEST(DrsLint, RuleCatalogIsStable) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --list-rules");
  ASSERT_EQ(result.exit_code, 0);
  for (const char* rule :
       {"banned", "unordered", "layer", "cycle", "dead-header", "pragma-once",
        "using-namespace", "float", "raw-new", "nodiscard", "bad-suppression",
        "shared-state", "hotpath-purity", "unordered-flow"}) {
    EXPECT_NE(result.out.find(rule), std::string::npos) << rule;
  }
  // hotpath-alloc was replaced by the call-graph-aware hotpath-purity rule
  // in schema v2; a stale suppression for it is now a bad-suppression.
  EXPECT_EQ(result.out.find("hotpath-alloc"), std::string::npos);
}

TEST(DrsLint, RealTreeLintsClean) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --root " +
                               DRS_LINT_ROOT + " --json --quiet");
  EXPECT_EQ(result.exit_code, 0) << result.out;
  EXPECT_NE(result.out.find("\"drs_lint\":2"), std::string::npos);
  EXPECT_NE(result.out.find("\"unsuppressed\":0"), std::string::npos)
      << result.out;
}

TEST(DrsLint, InjectedSharedStateFailsTheRealTree) {
  const std::string root = scratch_tree("shared_state");
  const RunResult baseline = run(lint_root_cmd(root));
  ASSERT_EQ(baseline.exit_code, 0) << baseline.out;

  // A process-wide mutable counter in the simulator core: exactly the
  // state that would race once simulations shard across threads.
  run("printf '\\nstatic int injected_counter = 0;\\n' >> " + root +
      "/src/sim/simulator.cpp");
  const RunResult result = run(lint_root_cmd(root));
  EXPECT_EQ(result.exit_code, 1) << result.out;
  EXPECT_NE(result.out.find("\"rule\":\"shared-state\""), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("injected_counter"), std::string::npos);
  run("rm -rf " + root);
}

TEST(DrsLint, InjectedHotPathAllocationFailsWithChain) {
  const std::string root = scratch_tree("hotpath");
  const RunResult baseline = run(lint_root_cmd(root));
  ASSERT_EQ(baseline.exit_code, 0) << baseline.out;

  // Grow a container inside Nic::deliver, a declared hot entry: the
  // finding must name the rule AND print the reachability chain.
  run("sed -i 's|void deliver(const Frame& frame) {|void deliver(const Frame\\& frame) { audit_.push_back(frame);|' " +
      root + "/src/net/nic.hpp");
  const RunResult result = run(lint_root_cmd(root));
  EXPECT_EQ(result.exit_code, 1) << result.out;
  EXPECT_NE(result.out.find("\"rule\":\"hotpath-purity\""), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("reachable from hot entry 'Nic::deliver'"),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("\"chain\":[\"drs::net::Nic::deliver\"]"),
            std::string::npos)
      << result.out;
  run("rm -rf " + root);
}

TEST(DrsLint, BadConfigIsAUsageError) {
  const RunResult result = run(std::string(DRS_LINT_BIN) + " --root " +
                               DRS_LINT_FIXTURES + " --config /nonexistent");
  EXPECT_EQ(result.exit_code, 2);
}
