// Switched-backplane medium: store-and-forward, per-port queues, full
// duplex. The modern-hardware extension of the paper's hub substrate.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "cost/cost_model.hpp"
#include "net/network.hpp"
#include "proto/icmp.hpp"

namespace drs::net {
namespace {

using namespace drs::util::literals;

struct FixedPayload final : Payload {
  std::uint32_t size;
  explicit FixedPayload(std::uint32_t s) : size(s) {}
  std::uint32_t wire_size() const override { return size; }
  std::string describe() const override { return "fixed"; }
};

struct RecordingSink final : FrameSink {
  struct Arrival {
    NetworkId ifindex;
    util::SimTime at;
    std::uint64_t packet_id;
  };
  std::vector<Arrival> arrivals;
  sim::Simulator* sim = nullptr;
  void on_frame(NetworkId ifindex, const Frame& frame) override {
    arrivals.push_back({ifindex, sim->now(), frame.packet.id});
  }
};

Frame make_frame(MacAddr src, MacAddr dst, std::uint32_t payload_bytes,
                 std::uint64_t id = 0) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.packet.payload = std::make_shared<FixedPayload>(payload_bytes);
  f.packet.id = id;
  return f;
}

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest() {
    Backplane::Config config;
    config.kind = MediumKind::kSwitch;
    config.bits_per_second = 100e6;
    config.propagation_delay = util::Duration::zero();
    backplane = std::make_unique<Backplane>(sim, 0, config);
    for (int i = 0; i < 4; ++i) {
      sinks[i].sim = &sim;
      nics.push_back(std::make_unique<Nic>(
          static_cast<NodeId>(i), 0, cluster_mac(0, static_cast<NodeId>(i)),
          cluster_ip(0, static_cast<NodeId>(i)), sinks[i]));
      backplane->attach(*nics.back());
    }
  }

  sim::Simulator sim;
  std::unique_ptr<Backplane> backplane;
  RecordingSink sinks[4];
  std::vector<std::unique_ptr<Nic>> nics;
};

TEST_F(SwitchTest, UnicastReachesOnlyTheAddressee) {
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 100, 7));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  // A switch forwards unicast to one port: the third party never sees it
  // (unlike the hub, where the MAC filter did the discarding).
  EXPECT_TRUE(sinks[2].arrivals.empty());
  EXPECT_EQ(nics[2]->counters().rx_filtered, 0u);
}

TEST_F(SwitchTest, StoreAndForwardDoublesSerialization) {
  // Minimum frame, 100 Mb/s: 5.12 us in, 5.12 us out, no propagation.
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 0));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks[1].arrivals[0].at.ns(), 2 * 5'120);
}

TEST_F(SwitchTest, DisjointPairsDoNotContend) {
  // 0->1 and 2->3 simultaneously: on a hub the second would queue behind the
  // first; on a switch both complete in one store-and-forward time.
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 0, 1));
  nics[2]->send(make_frame(nics[2]->mac(), nics[3]->mac(), 0, 2));
  sim.run();
  ASSERT_EQ(sinks[1].arrivals.size(), 1u);
  ASSERT_EQ(sinks[3].arrivals.size(), 1u);
  EXPECT_EQ(sinks[1].arrivals[0].at.ns(), 2 * 5'120);
  EXPECT_EQ(sinks[3].arrivals[0].at.ns(), 2 * 5'120);
}

TEST_F(SwitchTest, SharedEgressPortSerializes) {
  // 0->2 and 1->2: ingress in parallel, egress port of node 2 serializes.
  nics[0]->send(make_frame(nics[0]->mac(), nics[2]->mac(), 0, 1));
  nics[1]->send(make_frame(nics[1]->mac(), nics[2]->mac(), 0, 2));
  sim.run();
  ASSERT_EQ(sinks[2].arrivals.size(), 2u);
  EXPECT_EQ(sinks[2].arrivals[0].at.ns(), 2 * 5'120);
  EXPECT_EQ(sinks[2].arrivals[1].at.ns(), 3 * 5'120);
}

TEST_F(SwitchTest, BroadcastReplicatesToEveryPort) {
  nics[0]->send(make_frame(nics[0]->mac(), MacAddr::broadcast(), 0));
  sim.run();
  EXPECT_EQ(sinks[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks[2].arrivals.size(), 1u);
  EXPECT_EQ(sinks[3].arrivals.size(), 1u);
  EXPECT_TRUE(sinks[0].arrivals.empty());
}

TEST_F(SwitchTest, FailureDropsAndRestoreClearsPorts) {
  backplane->set_failed(true);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 0));
  sim.run();
  EXPECT_TRUE(sinks[1].arrivals.empty());
  EXPECT_EQ(backplane->counters().dropped_failed, 1u);
  backplane->set_failed(false);
  nics[0]->send(make_frame(nics[0]->mac(), nics[1]->mac(), 0));
  sim.run();
  EXPECT_EQ(sinks[1].arrivals.size(), 1u);
}

// --- Full stack on a switched cluster ------------------------------------------

TEST(SwitchedCluster, DrsFailoverWorksUnchanged) {
  sim::Simulator sim;
  ClusterNetwork::Config net_config;
  net_config.node_count = 6;
  net_config.backplane.kind = MediumKind::kSwitch;
  ClusterNetwork network(sim, net_config);
  core::DrsConfig drs_config;
  drs_config.probe_interval = 50_ms;
  drs_config.probe_timeout = 20_ms;
  core::DrsSystem system(network, drs_config);
  system.start();
  system.settle(500_ms);
  ASSERT_TRUE(system.test_reachability(0, 1));
  network.set_component_failed(ClusterNetwork::nic_component(0, 1), true);
  network.set_component_failed(ClusterNetwork::nic_component(1, 0), true);
  system.settle(1_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), core::PeerRouteMode::kRelay);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

TEST(SwitchedCostModel, ResponseTimeIsLinearInNodes) {
  cost::CostModel model;
  model.medium = MediumKind::kSwitch;
  const double t30 = model.response_time_seconds(30, 0.10);
  const double t60 = model.response_time_seconds(60, 0.10);
  // 2*(60-1) / (2*(30-1)) = 2.034...
  EXPECT_NEAR(t60 / t30, 59.0 / 29.0, 1e-9);
  // And the hub is quadratic: the same doubling costs ~4x.
  cost::CostModel hub;
  EXPECT_NEAR(hub.response_time_seconds(60, 0.10) /
                  hub.response_time_seconds(30, 0.10),
              (60.0 * 59) / (30.0 * 29), 1e-9);
}

TEST(SwitchedCostModel, NinetyHostAnchorGetsTwentyTimesCheaper) {
  cost::CostModel hub;
  cost::CostModel switched;
  switched.medium = MediumKind::kSwitch;
  // Per-port load is 1/N of the shared-medium load.
  EXPECT_NEAR(hub.response_time_seconds(90, 0.10) /
                  switched.response_time_seconds(90, 0.10),
              90.0, 1e-9);
  EXPECT_LT(switched.response_time_seconds(90, 0.10), 0.01);
}

TEST(SwitchedCostModel, MeasuredUtilizationMatchesPerPortModel) {
  cost::CostModel model;
  model.medium = MediumKind::kSwitch;
  const double predicted = model.utilization(8, 100_ms);
  const auto measured = cost::measure_cycle(8, 100_ms, 5, model);
  EXPECT_NEAR(measured.utilization_network_a, predicted, predicted * 0.05);
  EXPECT_EQ(measured.probes_failed, 0u);
}

TEST(SwitchedCostModel, SupportsFarLargerClusters) {
  cost::CostModel hub;
  cost::CostModel switched;
  switched.medium = MediumKind::kSwitch;
  const auto hub_max = hub.max_nodes(0.10, 1.0);
  const auto switch_max = switched.max_nodes(0.10, 1.0);
  EXPECT_GT(switch_max, hub_max * 10);
}

}  // namespace
}  // namespace drs::net
