#include "analytic/survivability.hpp"

#include <gtest/gtest.h>

#include "analytic/enumerate.hpp"

namespace drs::analytic {
namespace {

// ---------------------------------------------------------------------------
// The reconstructed Equation 1 against exhaustive enumeration — the ground
// truth for the whole reproduction.
// ---------------------------------------------------------------------------

class FormulaVsEnumeration
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(FormulaVsEnumeration, SuccessCountsMatchExactly) {
  const auto [nodes, failures] = GetParam();
  const EnumerationResult brute = enumerate_success_count(nodes, failures);
  EXPECT_EQ(brute.successes, success_count(nodes, failures))
      << "N=" << nodes << " f=" << failures;
  EXPECT_EQ(brute.total, total_count(nodes, failures));
}

INSTANTIATE_TEST_SUITE_P(
    SmallClusters, FormulaVsEnumeration,
    ::testing::Combine(::testing::Values<std::int64_t>(2, 3, 4, 5, 6, 7),
                       ::testing::Values<std::int64_t>(0, 1, 2, 3, 4, 5, 6)));

TEST(FormulaVsEnumeration, AllFailureCountsForMediumCluster) {
  // Every possible f for N=5 (12 components), including total destruction.
  const std::int64_t nodes = 5;
  for (std::int64_t f = 0; f <= component_count(nodes); ++f) {
    const EnumerationResult brute = enumerate_success_count(nodes, f);
    EXPECT_EQ(brute.successes, success_count(nodes, f)) << "f=" << f;
  }
}

// ---------------------------------------------------------------------------
// The paper's stated anchors.
// ---------------------------------------------------------------------------

TEST(Thresholds, PaperCrossoversReproduceExactly) {
  EXPECT_EQ(threshold_nodes(2, 0.99), 18);
  EXPECT_EQ(threshold_nodes(3, 0.99), 32);
  EXPECT_EQ(threshold_nodes(4, 0.99), 45);
}

TEST(Thresholds, JustBelowCrossoverIsBelowTarget) {
  EXPECT_LT(p_success(17, 2), 0.99);
  EXPECT_GE(p_success(18, 2), 0.99);
  EXPECT_LT(p_success(31, 3), 0.99);
  EXPECT_GE(p_success(32, 3), 0.99);
  EXPECT_LT(p_success(44, 4), 0.99);
  EXPECT_GE(p_success(45, 4), 0.99);
}

TEST(Thresholds, ExactRationalsAtTheCrossovers) {
  // F(18,2)/C(38,2) = 696/703, F(32,3)/C(66,3) = 45322/45760,
  // F(45,4)/C(92,4) = 2767007/2794155 (derived in DESIGN.md).
  EXPECT_EQ(to_string(success_count(18, 2)), "696");
  EXPECT_EQ(to_string(total_count(18, 2)), "703");
  EXPECT_EQ(to_string(success_count(32, 3)), "45322");
  EXPECT_EQ(to_string(total_count(32, 3)), "45760");
  EXPECT_EQ(to_string(success_count(45, 4)), "2767007");
  EXPECT_EQ(to_string(total_count(45, 4)), "2794155");
}

TEST(Thresholds, UnreachableTargetReturnsMinusOne) {
  EXPECT_EQ(threshold_nodes(2, 1.0 + 1e-12, 100), -1);
}

// ---------------------------------------------------------------------------
// Structural properties of Equation 1.
// ---------------------------------------------------------------------------

TEST(Equation1, ZeroAndOneFailureAreAlwaysSurvived) {
  for (std::int64_t n = 2; n <= 64; ++n) {
    EXPECT_DOUBLE_EQ(p_success(n, 0), 1.0);
    EXPECT_DOUBLE_EQ(p_success(n, 1), 1.0) << "n=" << n;
  }
}

TEST(Equation1, ProbabilityIsInUnitInterval) {
  for (std::int64_t n = 2; n <= 20; ++n) {
    for (std::int64_t f = 0; f <= component_count(n); ++f) {
      const double p = p_success(n, f);
      EXPECT_GE(p, 0.0) << "n=" << n << " f=" << f;
      EXPECT_LE(p, 1.0) << "n=" << n << " f=" << f;
    }
  }
}

TEST(Equation1, TotalDestructionIsFatal) {
  for (std::int64_t n = 2; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(p_success(n, component_count(n)), 0.0);
  }
}

class MonotoneInNodes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MonotoneInNodes, PSuccessNeverDecreasesWithClusterSize) {
  const std::int64_t f = GetParam();
  double previous = 0.0;
  for (std::int64_t n = std::max<std::int64_t>(2, f / 2); n <= 64; ++n) {
    if (f > component_count(n)) continue;
    const double p = p_success(n, f);
    EXPECT_GE(p, previous - 1e-12) << "f=" << f << " n=" << n;
    previous = p;
  }
}

INSTANTIATE_TEST_SUITE_P(FailureCounts, MonotoneInNodes,
                         ::testing::Values<std::int64_t>(2, 3, 4, 5, 6, 7, 8, 9,
                                                         10));

class ConvergesToOne : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ConvergesToOne, LimitBehaviour) {
  // The paper's headline: lim_{N->inf} P[S] = 1 for fixed f.
  const std::int64_t f = GetParam();
  EXPECT_GT(p_success(500, f), 0.999);
  EXPECT_GT(p_success(2000, f), 0.99995);
}

INSTANTIATE_TEST_SUITE_P(FailureCounts, ConvergesToOne,
                         ::testing::Values<std::int64_t>(2, 3, 4, 5, 6));

TEST(Equation1, MoreFailuresNeverHelp) {
  for (std::int64_t n : {4, 8, 16, 32, 64}) {
    for (std::int64_t f = 0; f < component_count(n); ++f) {
      EXPECT_GE(p_success(n, f), p_success(n, f + 1) - 1e-12)
          << "n=" << n << " f=" << f;
    }
  }
}

TEST(Series, CoversRequestedRangeInOrder) {
  const auto series = success_series(3, 4, 64);
  ASSERT_EQ(series.size(), 61u);
  EXPECT_EQ(series.front().nodes, 4);
  EXPECT_EQ(series.back().nodes, 64);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].nodes, series[i - 1].nodes + 1);
  }
}

TEST(Series, SkipsInfeasibleSmallClusters) {
  // f=10 needs at least 2N+2 >= 10 components.
  const auto series = success_series(10, 2, 10);
  for (const auto& point : series) {
    EXPECT_GE(component_count(point.nodes), 10);
  }
}

// ---------------------------------------------------------------------------
// Connectivity predicate unit behaviour (beyond the aggregate counts).
// ---------------------------------------------------------------------------

TEST(PairConnected, HealthySystemConnected) {
  ComponentSet failed;
  EXPECT_TRUE(pair_connected(4, failed, 0, 1));
  EXPECT_TRUE(all_live_pairs_connected(4, failed));
}

TEST(PairConnected, BothBackplanesDownDisconnects) {
  ComponentSet failed;
  failed.set(8);  // backplane 0 of a 4-node system
  failed.set(9);  // backplane 1
  EXPECT_FALSE(pair_connected(4, failed, 0, 1));
}

TEST(PairConnected, EndpointFullyDeadDisconnects) {
  ComponentSet failed;
  failed.set(0);  // node0 nic A
  failed.set(1);  // node0 nic B
  EXPECT_FALSE(pair_connected(4, failed, 0, 1));
  // Other pairs remain connected; all_live_pairs ignores the dead host.
  EXPECT_TRUE(pair_connected(4, failed, 1, 2));
  EXPECT_TRUE(all_live_pairs_connected(4, failed));
}

TEST(PairConnected, CrossSplitNeedsRelay) {
  // node0 alive only on net A, node1 alive only on net B.
  ComponentSet failed;
  failed.set(1);  // node0 nic B
  failed.set(2);  // node1 nic A
  EXPECT_TRUE(pair_connected(4, failed, 0, 1));  // nodes 2,3 can bridge
  // Kill one NIC on each potential relay: no bridge remains.
  failed.set(4);  // node2 nic A
  failed.set(7);  // node3 nic B
  EXPECT_FALSE(pair_connected(4, failed, 0, 1));
}

TEST(PairConnected, RelayRequiresBothBackplanes) {
  ComponentSet failed;
  failed.set(1);  // node0 nic B
  failed.set(2);  // node1 nic A
  failed.set(9);  // backplane B down: relay path impossible
  EXPECT_FALSE(pair_connected(4, failed, 0, 1));
}

TEST(PairConnected, SingleBackplaneDirectStillWorks) {
  ComponentSet failed;
  failed.set(9);  // backplane B down, both endpoints alive on A
  EXPECT_TRUE(pair_connected(4, failed, 0, 1));
}

TEST(PairConnected, AllPairsAreExchangeable) {
  // MODEL.md's exchangeability claim: the success count is identical for
  // every designated pair, so fixing (0, 1) loses no generality.
  const std::int64_t nodes = 5;
  for (std::int64_t f : {2, 3, 4}) {
    u128 reference = 0;
    bool first = true;
    for (std::int64_t a = 0; a < nodes; ++a) {
      for (std::int64_t b = a + 1; b < nodes; ++b) {
        u128 successes = 0;
        for_each_subset(component_count(nodes), f,
                        [&](const ComponentSet& failed) {
                          if (pair_connected(nodes, failed, a, b)) ++successes;
                        });
        if (first) {
          reference = successes;
          first = false;
        } else {
          EXPECT_EQ(successes, reference) << "pair (" << a << "," << b
                                          << ") f=" << f;
        }
      }
    }
    EXPECT_EQ(reference, success_count(nodes, f));
  }
}

TEST(ForEachSubset, CountsMatchBinomial) {
  for (std::int64_t m = 0; m <= 10; ++m) {
    for (std::int64_t f = 0; f <= m; ++f) {
      u128 visited = for_each_subset(m, f, [](const ComponentSet&) {});
      EXPECT_EQ(visited, binomial(m, f)) << "m=" << m << " f=" << f;
    }
  }
}

TEST(ForEachSubset, SubsetsHaveRequestedSize) {
  for_each_subset(8, 3, [](const ComponentSet& set) {
    EXPECT_EQ(set.count(), 3);
  });
}

}  // namespace
}  // namespace drs::analytic
