// Frame tracer, lossy/jittery media, and asymmetric NIC failures.
#include <gtest/gtest.h>

#include "net/trace.hpp"
#include "proto/icmp.hpp"

namespace drs::net {
namespace {

using namespace drs::util::literals;

class TraceLossTest : public ::testing::Test {
 protected:
  explicit TraceLossTest(Backplane::Config backplane = {})
      : network(sim, {.node_count = 4, .backplane = backplane}) {
    for (NodeId i = 0; i < 4; ++i) {
      icmp.push_back(std::make_unique<proto::IcmpService>(network.host(i)));
    }
  }

  bool ping(NodeId from, Ipv4Addr to, util::Duration timeout = 50_ms) {
    bool ok = false;
    proto::PingOptions options;
    options.timeout = timeout;
    icmp[from]->ping(to, options,
                     [&](const proto::PingResult& r) { ok = r.success; });
    sim.run_for(timeout + 10_ms);
    return ok;
  }

  sim::Simulator sim;
  ClusterNetwork network;
  std::vector<std::unique_ptr<proto::IcmpService>> icmp;
};

// --- FrameTracer -------------------------------------------------------------

TEST_F(TraceLossTest, TracerSeesRequestAndReply) {
  FrameTracer tracer(network);
  ASSERT_TRUE(ping(0, cluster_ip(0, 1)));
  const auto icmp_frames = tracer.by_protocol(Protocol::kIcmp);
  ASSERT_EQ(icmp_frames.size(), 2u);
  EXPECT_EQ(icmp_frames[0].src_ip, cluster_ip(0, 0));
  EXPECT_EQ(icmp_frames[0].dst_ip, cluster_ip(0, 1));
  EXPECT_NE(icmp_frames[0].summary.find("echo-request"), std::string::npos);
  EXPECT_NE(icmp_frames[1].summary.find("echo-reply"), std::string::npos);
  EXPECT_LT(icmp_frames[0].at, icmp_frames[1].at);
  EXPECT_EQ(icmp_frames[0].wire_bytes, 64u);
  EXPECT_EQ(tracer.total_seen(), 2u);
}

TEST_F(TraceLossTest, TracerFilterNarrowsCapture) {
  FrameTracer tracer(network);
  tracer.set_filter([](const TraceRecord& record) {
    return record.dst_ip == cluster_ip(0, 2);
  });
  ping(0, cluster_ip(0, 1));
  ping(0, cluster_ip(0, 2));
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].dst_ip, cluster_ip(0, 2));
}

TEST_F(TraceLossTest, TracerRingDiscardsOldest) {
  FrameTracer tracer(network, /*capacity=*/3);
  for (int i = 0; i < 4; ++i) ping(0, cluster_ip(0, 1));
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.total_seen(), 8u);  // 4 requests + 4 replies
}

TEST_F(TraceLossTest, TracerDumpIsHumanReadable) {
  FrameTracer tracer(network);
  ping(0, cluster_ip(1, 3));
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("net1"), std::string::npos);
  EXPECT_NE(dump.find("10.2.0.1 > 10.2.0.4"), std::string::npos);
  EXPECT_NE(dump.find("icmp"), std::string::npos);
}

// --- Random loss --------------------------------------------------------------

class LossyTest : public TraceLossTest {
 protected:
  static Backplane::Config lossy() {
    Backplane::Config config;
    config.frame_loss_rate = 0.3;
    config.seed = 1234;
    return config;
  }
  LossyTest() : TraceLossTest(lossy()) {}
};

TEST_F(LossyTest, SomeFramesVanishButCountersBalance) {
  int successes = 0;
  const int attempts = 200;
  for (int i = 0; i < attempts; ++i) {
    if (ping(0, cluster_ip(0, 1), 5_ms)) ++successes;
  }
  // P[echo survives both ways] = 0.7^2 = 0.49; with 200 deterministic-seed
  // trials the count is comfortably inside (50, 150).
  EXPECT_GT(successes, 50);
  EXPECT_LT(successes, 150);
  const auto& counters = network.backplane(0).counters();
  EXPECT_GT(counters.lost_random, 0u);
  // Lost frames still consumed medium time, so they count as transmitted.
  EXPECT_LT(counters.lost_random, counters.frames);
  // Roughly 30 % of offered frames die; the seed is fixed, the band generous.
  const double loss = static_cast<double>(counters.lost_random) /
                      static_cast<double>(counters.frames);
  EXPECT_GT(loss, 0.2);
  EXPECT_LT(loss, 0.4);
}

TEST_F(LossyTest, LossIsDeterministicPerSeed) {
  // Two networks with identical config but different backplane ids draw
  // different streams; rebuilding the same network reproduces exactly.
  sim::Simulator sim2;
  ClusterNetwork network2(sim2, {.node_count = 4, .backplane = lossy()});
  proto::IcmpService a(network2.host(0));
  proto::IcmpService b(network2.host(1));
  // Mirror the same probe sequence on both instances.
  int first_run = 0, second_run = 0;
  for (int i = 0; i < 50; ++i) {
    if (ping(0, cluster_ip(0, 1), 5_ms)) ++first_run;
  }
  for (int i = 0; i < 50; ++i) {
    bool ok = false;
    proto::PingOptions options;
    options.timeout = 5_ms;
    a.ping(cluster_ip(0, 1), options,
           [&](const proto::PingResult& r) { ok = r.success; });
    sim2.run_for(15_ms);
    if (ok) ++second_run;
  }
  EXPECT_EQ(first_run, second_run);
}

TEST(Jitter, DelaysStayWithinBound) {
  sim::Simulator sim;
  Backplane::Config config;
  config.jitter = 100_us;
  config.propagation_delay = 5_us;
  ClusterNetwork network(sim, {.node_count = 2, .backplane = config});
  proto::IcmpService a(network.host(0));
  proto::IcmpService b(network.host(1));
  util::Duration min_rtt = util::Duration::max();
  util::Duration max_rtt = util::Duration::zero();
  for (int i = 0; i < 100; ++i) {
    proto::PingOptions options;
    options.timeout = 10_ms;
    a.ping(cluster_ip(0, 1), options, [&](const proto::PingResult& r) {
      ASSERT_TRUE(r.success);
      min_rtt = std::min(min_rtt, r.rtt);
      max_rtt = std::max(max_rtt, r.rtt);
    });
    sim.run_for(15_ms);
  }
  // Base RTT = 2 x (5.12 us serialization + 5 us propagation) ~ 20 us;
  // jitter adds up to 200 us across the round trip.
  EXPECT_GE(min_rtt, 20_us);
  EXPECT_LE(max_rtt, 20_us + 200_us + 1_us);
  EXPECT_GT(max_rtt - min_rtt, 20_us);  // jitter actually spread things
}

// --- Asymmetric NIC failures ---------------------------------------------------

TEST_F(TraceLossTest, TxOnlyFailureBlocksOutboundOnly) {
  network.host(0).nic(0).set_tx_failed(true);
  EXPECT_FALSE(network.host(0).nic(0).failed());  // not a full failure
  EXPECT_FALSE(ping(0, cluster_ip(0, 1)));        // our request cannot leave
  EXPECT_TRUE(ping(1, cluster_ip(1, 0)));         // other net unaffected
  // Inbound on net 0 still works: node 1 pings us and the request arrives,
  // but our reply is swallowed by the dead transmitter.
  EXPECT_FALSE(ping(1, cluster_ip(0, 0)));
  EXPECT_GT(network.host(0).nic(0).counters().rx_frames, 0u);
}

TEST_F(TraceLossTest, RxOnlyFailureBlocksInboundOnly) {
  network.host(1).nic(0).set_rx_failed(true);
  EXPECT_FALSE(ping(0, cluster_ip(0, 1)));  // request never delivered
  EXPECT_GT(network.host(1).nic(0).counters().rx_dropped, 0u);
  // The victim can still transmit on that NIC: its own probe goes out and
  // the reply dies on ITS rx — also a failure, but the TX path was exercised.
  EXPECT_FALSE(ping(1, cluster_ip(0, 0)));
  EXPECT_GT(network.host(1).nic(0).counters().tx_frames, 0u);
}

TEST_F(TraceLossTest, FullFailureIsTxAndRx) {
  network.host(2).nic(1).set_failed(true);
  EXPECT_TRUE(network.host(2).nic(1).failed());
  EXPECT_TRUE(network.host(2).nic(1).tx_failed());
  EXPECT_TRUE(network.host(2).nic(1).rx_failed());
  network.host(2).nic(1).set_failed(false);
  EXPECT_FALSE(network.host(2).nic(1).tx_failed());
}

}  // namespace
}  // namespace drs::net
