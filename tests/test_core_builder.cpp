// DrsConfig::validate + DrsSystemBuilder: descriptive rejection of
// inconsistent knob combinations at every entry point (DrsSystem ctor,
// builder, chaos runner), and fluent one-expression deployment including
// pre-seeded failures.
#include <gtest/gtest.h>

#include <stdexcept>

#include "chaos/runner.hpp"
#include "core/builder.hpp"
#include "core/system.hpp"

namespace {

using namespace drs;
using namespace drs::util::literals;

// --- DrsConfig::validate ----------------------------------------------------

TEST(DrsConfigValidate, DefaultConfigIsValid) {
  EXPECT_FALSE(core::DrsConfig{}.validate().has_value());
}

TEST(DrsConfigValidate, TimeoutMustBeBelowInterval) {
  core::DrsConfig config;
  config.probe_timeout = config.probe_interval;
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("probe_timeout"), std::string::npos) << *error;
  EXPECT_NE(error->find("probe_interval"), std::string::npos) << *error;
}

TEST(DrsConfigValidate, MinTimeoutMustNotExceedTimeout) {
  core::DrsConfig config;
  config.min_probe_timeout = config.probe_timeout + 1_ms;
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("min_probe_timeout"), std::string::npos) << *error;
}

TEST(DrsConfigValidate, RejectsNonPositiveDurationsAndCounts) {
  core::DrsConfig config;
  config.probe_interval = util::Duration::zero();
  EXPECT_TRUE(config.validate().has_value());

  config = core::DrsConfig{};
  config.failures_to_down = 0;
  EXPECT_TRUE(config.validate().has_value());

  config = core::DrsConfig{};
  config.successes_to_up = 0;
  EXPECT_TRUE(config.validate().has_value());

  config = core::DrsConfig{};
  config.allow_relay = true;
  config.discover_timeout = util::Duration::zero();
  EXPECT_TRUE(config.validate().has_value());
}

TEST(DrsConfigValidate, WarmStandbyRequiresRelay) {
  core::DrsConfig config;
  config.warm_standby = true;
  config.allow_relay = false;
  const auto error = config.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("warm_standby"), std::string::npos) << *error;
}

TEST(DrsConfigValidate, FlapDampingNeedsWindowAndHold) {
  core::DrsConfig config;
  config.flap_threshold = 3;
  config.flap_window = util::Duration::zero();
  EXPECT_TRUE(config.validate().has_value());
}

// --- rejection at the entry points ------------------------------------------

TEST(DrsSystemCtor, ThrowsDescriptiveErrorOnInvalidConfig) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  core::DrsConfig config;
  config.probe_timeout = 2 * config.probe_interval;
  try {
    core::DrsSystem system(network, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("probe_timeout"), std::string::npos);
  }
}

TEST(ChaosRunner, RejectsInvalidCampaignConfig) {
  chaos::ChaosOptions options;
  options.campaigns = 1;
  options.campaign.drs.probe_timeout = options.campaign.drs.probe_interval;
  EXPECT_THROW(chaos::run_chaos(options), std::invalid_argument);
}

// --- the builder ------------------------------------------------------------

TEST(DrsSystemBuilder, BuildsARunningClusterInOneExpression) {
  auto cluster = core::DrsSystemBuilder()
                     .node_count(6)
                     .probe_interval(50_ms)
                     .probe_timeout(20_ms)
                     .build();
  EXPECT_EQ(cluster.system().node_count(), 6);
  cluster.settle(1_s);
  EXPECT_TRUE(cluster.test_reachability(0, 1));
  EXPECT_EQ(cluster.system().daemon(0).config().probe_interval, 50_ms);
}

TEST(DrsSystemBuilder, KnobCallsOverrideBaseConfig) {
  core::DrsConfig base;
  base.probe_interval = 200_ms;
  base.probe_timeout = 80_ms;
  auto cluster = core::DrsSystemBuilder()
                     .node_count(4)
                     .config(base)
                     .allow_relay(false)
                     .build();
  EXPECT_EQ(cluster.system().daemon(0).config().probe_interval, 200_ms);
  EXPECT_FALSE(cluster.system().daemon(0).config().allow_relay);
}

TEST(DrsSystemBuilder, PreSeededFailuresAreInForceBeforeStart) {
  // Node 1's primary NIC is dead from the first probe cycle: the cluster
  // comes up already degraded and DRS pins 0->1 to the secondary network.
  auto cluster = core::DrsSystemBuilder()
                     .node_count(4)
                     .probe_interval(50_ms)
                     .probe_timeout(20_ms)
                     .fail_component(net::ClusterNetwork::nic_component(1, 0))
                     .build();
  cluster.settle(2_s);
  EXPECT_TRUE(cluster.test_reachability(0, 1));
  EXPECT_EQ(cluster.system().daemon(0).peer_mode(1),
            core::PeerRouteMode::kViaNetworkB);
}

TEST(DrsSystemBuilder, ThrowsOnInvalidConfiguration) {
  EXPECT_THROW(core::DrsSystemBuilder()
                   .node_count(4)
                   .probe_timeout(2_s)  // above the 100 ms default interval
                   .build(),
               std::invalid_argument);
}

TEST(DrsSystemBuilder, AutoStartOffLeavesDaemonsIdle) {
  auto cluster =
      core::DrsSystemBuilder().node_count(4).auto_start(false).build();
  cluster.simulator().run_for(1_s);
  EXPECT_EQ(cluster.system().total_probes_sent(), 0u);
  cluster.system().start();
  cluster.settle(1_s);
  EXPECT_GT(cluster.system().total_probes_sent(), 0u);
}

// --- DrsSystemBuilder::with_policy ------------------------------------------

TEST(DrsSystemBuilderPolicy, BuildsAnyRegisteredPolicyByName) {
  auto cluster = core::DrsSystemBuilder()
                     .node_count(6)
                     .with_policy("static_resilient")
                     .build();
  EXPECT_FALSE(cluster.has_system());
  ASSERT_TRUE(cluster.has_policy());
  EXPECT_EQ(cluster.policy().name(), "static_resilient");
  cluster.settle(1_s);
  EXPECT_TRUE(cluster.test_reachability(0, 1));
}

TEST(DrsSystemBuilderPolicy, DrsByNameStillExposesTheSystem) {
  auto cluster = core::DrsSystemBuilder()
                     .node_count(4)
                     .with_policy("drs")
                     .probe_interval(50_ms)
                     .probe_timeout(20_ms)
                     .build();
  ASSERT_TRUE(cluster.has_system());
  ASSERT_TRUE(cluster.has_policy());
  EXPECT_EQ(cluster.system().daemon(0).config().probe_interval, 50_ms);
  cluster.settle(1_s);
  EXPECT_TRUE(cluster.test_reachability(0, 1));
}

TEST(DrsSystemBuilderPolicy, UnknownNameListsRegisteredNames) {
  try {
    (void)core::DrsSystemBuilder().with_policy("bgp").build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bgp"), std::string::npos) << what;
    EXPECT_NE(what.find("static_resilient"), std::string::npos) << what;
    EXPECT_NE(what.find("alternate_path"), std::string::npos) << what;
  }
}

TEST(DrsSystemBuilderPolicy, InvalidPolicyParamsRejected) {
  policy::PolicyParams params;
  params.alternate_path.notify_delay = util::Duration::zero();
  EXPECT_THROW(core::DrsSystemBuilder()
                   .with_policy("alternate_path", params)
                   .build(),
               std::invalid_argument);
}

TEST(DrsSystemBuilderPolicy, SystemAccessorThrowsWithoutDrs) {
  auto cluster =
      core::DrsSystemBuilder().node_count(4).with_policy("static").build();
  EXPECT_THROW(cluster.system(), std::logic_error);
}

TEST(DrsSystemBuilderPolicy, PolicyAccessorThrowsOnLegacyPath) {
  auto cluster = core::DrsSystemBuilder().node_count(4).build();
  EXPECT_TRUE(cluster.has_system());
  EXPECT_FALSE(cluster.has_policy());
  EXPECT_THROW(cluster.policy(), std::logic_error);
}

TEST(DrsSystemBuilderPolicy, PreSeededFailureVisibleToPrecomputedPolicy) {
  // static_resilient resolves at start() against the already-failed NIC:
  // 0 -> 1 must come up routed over network B with zero protocol traffic.
  auto cluster = core::DrsSystemBuilder()
                     .node_count(4)
                     .with_policy("static_resilient")
                     .fail_component(net::ClusterNetwork::nic_component(1, 0))
                     .build();
  cluster.settle(1_s);
  EXPECT_TRUE(cluster.test_reachability(0, 1));
  EXPECT_EQ(cluster.policy().control_messages(), 0u);
}

}  // namespace
