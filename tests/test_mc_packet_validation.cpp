#include "montecarlo/packet_validation.hpp"

#include <gtest/gtest.h>

namespace drs::mc {
namespace {

// These are the repository's strongest integration tests: the combinatorial
// model and the live protocol implementation must agree on every sampled
// failure pattern — connectivity-wise, the deployed DRS achieves exactly
// what Equation 1 credits it with.

class PacketAgreement
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(PacketAgreement, ModelAndProtocolAgreeOnSampledFailures) {
  const auto [nodes, failures] = GetParam();
  PacketValidationOptions options;
  options.nodes = nodes;
  options.failures = failures;
  options.samples = 12;
  options.seed = 0xC0FFEE + static_cast<std::uint64_t>(nodes * 100 + failures);
  const PacketValidationResult result = validate_against_packet_level(options);
  EXPECT_EQ(result.samples, options.samples);
  std::string detail;
  for (const auto& d : result.disagreements) detail += d.to_string() + "\n";
  EXPECT_TRUE(result.perfect()) << detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PacketAgreement,
    ::testing::Values(std::tuple{4, 1}, std::tuple{4, 2}, std::tuple{4, 3},
                      std::tuple{6, 2}, std::tuple{6, 4}, std::tuple{8, 3}));

TEST(PacketAgreement, HeavyDamageStillAgrees) {
  // f large enough that most samples are disconnected: the protocol must not
  // "over-recover" (claim connectivity the hardware cannot provide).
  PacketValidationOptions options;
  options.nodes = 5;
  options.failures = 8;
  options.samples = 10;
  const PacketValidationResult result = validate_against_packet_level(options);
  EXPECT_TRUE(result.perfect());
  EXPECT_LT(result.packet_connected, result.samples);  // some must be cut
}

TEST(PacketAgreement, RelayDisabledWeakensConnectivity) {
  // Ablation: with allow_relay = false the packet level can only do direct
  // failover, so it must never beat the model, and on cross-split patterns
  // it falls short — packet_connected <= model_connected.
  PacketValidationOptions options;
  options.nodes = 6;
  options.failures = 4;
  options.samples = 30;
  options.drs.allow_relay = false;
  const PacketValidationResult result = validate_against_packet_level(options);
  EXPECT_LE(result.packet_connected, result.model_connected);
  for (const auto& d : result.disagreements) {
    // Any disagreement must be the protocol UNDER-achieving, never over.
    EXPECT_TRUE(d.model_says_connected && !d.packet_level_connected)
        << d.to_string();
  }
}

}  // namespace
}  // namespace drs::mc
