#include "proto/udp.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace drs::proto {
namespace {

using namespace drs::util::literals;

class UdpTest : public ::testing::Test {
 protected:
  UdpTest() : network(sim, {.node_count = 3, .backplane = {}}) {
    for (net::NodeId i = 0; i < 3; ++i) {
      services.push_back(std::make_unique<UdpService>(network.host(i)));
    }
  }
  sim::Simulator sim;
  net::ClusterNetwork network;
  std::vector<std::unique_ptr<UdpService>> services;
};

TEST_F(UdpTest, DatagramDeliversToBoundPort) {
  UdpDatagram received;
  std::string message;
  services[1]->open(2000, [&](const UdpDatagram& d) {
    received = d;
    message = *std::any_cast<std::string>(d.message);
  });
  services[0]->send(net::cluster_ip(0, 1), 2000, 1234, 64, std::string("hello"));
  sim.run();
  EXPECT_EQ(message, "hello");
  EXPECT_EQ(received.src, net::cluster_ip(0, 0));
  EXPECT_EQ(received.src_port, 1234);
  EXPECT_EQ(received.dst_port, 2000);
  EXPECT_EQ(received.data_bytes, 64u);
  EXPECT_EQ(services[1]->delivered(), 1u);
}

TEST_F(UdpTest, UnboundPortCountsAndDrops) {
  services[0]->send(net::cluster_ip(0, 1), 2000, 1, 8);
  sim.run();
  EXPECT_EQ(services[1]->delivered(), 0u);
  EXPECT_EQ(services[1]->no_port(), 1u);
}

TEST_F(UdpTest, PortDemuxSeparatesHandlers) {
  int port_a = 0, port_b = 0;
  services[1]->open(1000, [&](const UdpDatagram&) { ++port_a; });
  services[1]->open(1001, [&](const UdpDatagram&) { ++port_b; });
  services[0]->send(net::cluster_ip(0, 1), 1000, 1, 8);
  services[0]->send(net::cluster_ip(0, 1), 1001, 1, 8);
  services[0]->send(net::cluster_ip(0, 1), 1001, 1, 8);
  sim.run();
  EXPECT_EQ(port_a, 1);
  EXPECT_EQ(port_b, 2);
}

TEST_F(UdpTest, CloseStopsDelivery) {
  int count = 0;
  services[1]->open(1000, [&](const UdpDatagram&) { ++count; });
  services[0]->send(net::cluster_ip(0, 1), 1000, 1, 8);
  sim.run();
  services[1]->close(1000);
  services[0]->send(net::cluster_ip(0, 1), 1000, 1, 8);
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(services[1]->no_port(), 1u);
}

TEST_F(UdpTest, ReplyUsingDatagramSource) {
  // Classic request/reply flow across both subnets.
  services[1]->open(2000, [&](const UdpDatagram& d) {
    services[1]->send(d.src, d.src_port, d.dst_port, 16, std::string("pong"));
  });
  std::string got;
  services[0]->open(3000, [&](const UdpDatagram& d) {
    got = *std::any_cast<std::string>(d.message);
  });
  services[0]->send(net::cluster_ip(1, 1), 2000, 3000, 16, std::string("ping"));
  sim.run();
  EXPECT_EQ(got, "pong");
}

TEST_F(UdpTest, WireSizeIncludesUdpHeader) {
  services[0]->send(net::cluster_ip(0, 1), 1, 1, 100);
  sim.run();
  // 14 eth + 20 ip + 8 udp + 100 data + 4 fcs = 146 bytes
  EXPECT_EQ(network.host(0).nic(0).counters().tx_bytes, 146u);
}

TEST_F(UdpTest, SendOverDeadPathReturnsTrueButDoesNotDeliver) {
  // UDP is fire-and-forget: local send succeeds, the frame dies on the
  // medium.
  network.backplane(0).set_failed(true);
  int count = 0;
  services[1]->open(1000, [&](const UdpDatagram&) { ++count; });
  EXPECT_TRUE(services[0]->send(net::cluster_ip(0, 1), 1000, 1, 8));
  sim.run();
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace drs::proto
