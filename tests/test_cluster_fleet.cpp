// Fleet-scale pinning: the paper's 27-cluster deployment as one simulation.
//
// The golden smoke run locks the fleet's observable aggregate — per-cluster
// probe totals, gateway echo counters, pristine state, end-to-end relay
// reachability — down to the byte. The remaining tests pin the properties
// the Fleet exists for: member clusters behave exactly like standalone
// clusters (isolation invariant), the flat FailureDomain component space
// addresses every cluster/gateway/relay part, and relay-segment failures
// are detected and survive healing.
//
// To regenerate after an intentional protocol change:
//   DRS_UPDATE_GOLDEN=1 ./build/tests/test_cluster_fleet
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/campaign.hpp"
#include "cluster/fleet.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace drs {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DRS_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (const char* update = std::getenv("DRS_UPDATE_GOLDEN");
      update != nullptr && *update != '\0') {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with DRS_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "fleet report drifted from " << path
      << " — if intentional, regenerate with DRS_UPDATE_GOLDEN=1";
}

/// The paper's deployment shape, on the fast campaign timings so half a
/// second of simulated time covers ten probe cycles.
cluster::FleetConfig smoke_config() {
  cluster::FleetConfig config;
  config.clusters = 27;
  config.nodes_per_cluster = 8;
  config.drs = chaos::fast_campaign_drs_config();
  return config;
}

/// Deterministic integer report of a 500 ms fleet run: protocol-level
/// counters only (no allocator internals), so the golden survives unrelated
/// refactors but pins every probe the fleet sends.
std::string fleet_smoke_report() {
  sim::Simulator sim;
  cluster::Fleet fleet(sim, smoke_config());
  fleet.start();
  fleet.settle(util::Duration::millis(500));

  std::ostringstream report;
  report << "{\"clusters\":" << fleet.cluster_count()
         << ",\"nodes_per_cluster\":" << fleet.nodes_per_cluster();
  report << ",\"cluster_probes_sent\":[";
  for (net::ClusterId c = 0; c < fleet.cluster_count(); ++c) {
    report << (c == 0 ? "" : ",") << fleet.system(c).total_probes_sent();
  }
  report << "],\"gateway_echoes\":[";
  for (net::ClusterId c = 0; c < fleet.cluster_count(); ++c) {
    report << (c == 0 ? "" : ",") << fleet.gateway_icmp(c).probes_sent();
  }
  report << "],\"gateway_timeouts\":[";
  for (net::ClusterId c = 0; c < fleet.cluster_count(); ++c) {
    report << (c == 0 ? "" : ",") << fleet.gateway_icmp(c).probes_timed_out();
  }
  report << "],\"all_pristine\":" << (fleet.all_pristine() ? "true" : "false");
  const bool reachable = fleet.test_relay_reachability(
      0, static_cast<net::ClusterId>(fleet.cluster_count() - 1u));
  report << ",\"relay_0_to_26\":" << (reachable ? "true" : "false") << "}";
  fleet.stop();
  return report.str();
}

TEST(ClusterFleet, TwentySevenClusterSmokeGolden) {
  const std::string actual = fleet_smoke_report();
  // Rerun identity first: the golden is only meaningful if the scenario is
  // a pure function of the config.
  ASSERT_EQ(fleet_smoke_report(), actual);
  check_golden("fleet_smoke_27.json", actual);
}

// Isolation invariant: a fleet member cluster reuses the standalone subnet
// plan verbatim and shares nothing but the simulator, so its DRS system
// must produce exactly the counters a standalone cluster of the same size
// produces over the same simulated span.
TEST(ClusterFleet, MemberClusterMatchesStandaloneCluster) {
  cluster::FleetConfig config = smoke_config();
  config.clusters = 3;
  config.nodes_per_cluster = 5;
  sim::Simulator fleet_sim;
  cluster::Fleet fleet(fleet_sim, config);
  fleet.start();
  fleet.settle(util::Duration::seconds(1));

  sim::Simulator solo_sim;
  net::ClusterNetwork solo(solo_sim,
                           {.node_count = config.nodes_per_cluster,
                            .backplane = config.backplane});
  core::DrsSystem solo_system(solo, config.drs);
  solo_system.start();
  solo_sim.run_for(util::Duration::seconds(1));

  for (net::ClusterId c = 0; c < config.clusters; ++c) {
    EXPECT_EQ(fleet.system(c).total_probes_sent(),
              solo_system.total_probes_sent())
        << "cluster " << c;
    EXPECT_EQ(fleet.system(c).total_control_messages(),
              solo_system.total_control_messages())
        << "cluster " << c;
    EXPECT_TRUE(fleet.system(c).all_pristine()) << "cluster " << c;
  }
  EXPECT_TRUE(solo_system.all_pristine());
  solo_system.stop();
  fleet.stop();
}

TEST(ClusterFleet, ComponentSpaceAddressesEveryPart) {
  cluster::FleetConfig config = smoke_config();
  config.clusters = 4;
  config.nodes_per_cluster = 3;
  sim::Simulator sim;
  cluster::Fleet fleet(sim, config);

  const auto stride =
      static_cast<net::ComponentIndex>(2u * config.nodes_per_cluster + 2u);
  ASSERT_EQ(fleet.component_count(),
            config.clusters * stride + config.clusters + 1u);

  // Every index describes itself; the three regions fail and heal cleanly.
  for (net::ComponentIndex i = 0; i < fleet.component_count(); ++i) {
    EXPECT_FALSE(fleet.describe_component(i).empty()) << i;
    EXPECT_FALSE(fleet.component_failed(i)) << i;
  }
  const net::ComponentIndex nic =
      fleet.cluster_component(2, net::ClusterNetwork::nic_component(1, 0));
  const net::ComponentIndex gateway = fleet.gateway_component(3);
  const net::ComponentIndex relay = fleet.relay_backplane_component();
  for (const net::ComponentIndex index : {nic, gateway, relay}) {
    fleet.set_component_failed(index, true);
    EXPECT_TRUE(fleet.component_failed(index)) << index;
  }
  // A member cluster sees the flat-index failure through its own local view.
  EXPECT_TRUE(fleet.cluster(2).component_failed(
      net::ClusterNetwork::nic_component(1, 0)));
  for (const net::ComponentIndex index : {nic, gateway, relay}) {
    fleet.set_component_failed(index, false);
    EXPECT_FALSE(fleet.component_failed(index)) << index;
  }
}

TEST(ClusterFleet, RelayFailureIsDetectedAndHeals) {
  cluster::FleetConfig config = smoke_config();
  config.clusters = 3;
  config.nodes_per_cluster = 3;
  sim::Simulator sim;
  cluster::Fleet fleet(sim, config);
  fleet.start();
  fleet.settle(util::Duration::millis(300));
  ASSERT_TRUE(fleet.test_relay_reachability(0, 2));

  fleet.set_component_failed(fleet.relay_backplane_component(), true);
  EXPECT_FALSE(fleet.test_relay_reachability(0, 2));
  // Cluster-internal traffic is unaffected: islands never touch the relay.
  fleet.settle(util::Duration::millis(300));
  EXPECT_TRUE(fleet.all_pristine());

  fleet.set_component_failed(fleet.relay_backplane_component(), false);
  EXPECT_TRUE(fleet.test_relay_reachability(0, 2));
  fleet.stop();
}

}  // namespace
}  // namespace drs
