// Management-plane status queries ("answering requests" in the paper's
// two-phase daemon loop).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "net/failure.hpp"

namespace drs::core {
namespace {

using namespace drs::util::literals;

class StatusTest : public ::testing::Test {
 protected:
  StatusTest()
      : network(sim, {.node_count = 6, .backplane = {}}),
        system(network, config()),
        injector(network) {
    system.start();
  }

  static DrsConfig config() {
    DrsConfig c;
    c.probe_interval = 50_ms;
    c.probe_timeout = 20_ms;
    c.failures_to_down = 2;
    c.discover_timeout = 25_ms;
    return c;
  }

  std::optional<DrsDaemon::RemoteStatus> query(net::NodeId from, net::NodeId to,
                                               util::Duration timeout = 200_ms) {
    std::optional<DrsDaemon::RemoteStatus> result;
    bool done = false;
    system.daemon(from).query_peer_status(to, timeout,
                                          [&](const auto& status) {
                                            result = status;
                                            done = true;
                                          });
    const auto deadline = sim.now() + timeout + 50_ms;
    while (!done && sim.now() < deadline && !sim.idle()) sim.step();
    return result;
  }

  sim::Simulator sim;
  net::ClusterNetwork network;
  DrsSystem system;
  net::FailureInjector injector;
};

TEST_F(StatusTest, HealthyNodeReportsAllClear) {
  sim.run_for(500_ms);
  const auto status = query(0, 3);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->node, 3);
  EXPECT_EQ(status->links_down, 0);
  EXPECT_EQ(status->detours, 0);
  EXPECT_EQ(status->leases_held, 0);
  EXPECT_GT(status->rtt, util::Duration::zero());
  EXPECT_LT(status->rtt, 5_ms);
}

TEST_F(StatusTest, DegradedNodeReportsItsDetours) {
  sim.run_for(500_ms);
  // Node 3 loses its primary NIC: it should report 5 down links (one per
  // peer on net A) and 5 detours.
  injector.apply_now(net::ClusterNetwork::nic_component(3, 0), true);
  sim.run_for(1_s);
  const auto status = query(0, 3);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->links_down, 5);
  EXPECT_EQ(status->detours, 5);
}

TEST_F(StatusTest, RelayReportsLeases) {
  sim.run_for(500_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  ASSERT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kRelay);
  const net::NodeId relay = *system.daemon(0).relay_for(1);
  const auto status = query(2 == relay ? 3 : 2, relay);
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->leases_held, 1);
}

TEST_F(StatusTest, QueryRidesTheDetour) {
  // Querying a node whose direct links to us are gone still works: the
  // request is routed, so it follows the relay path like any data.
  sim.run_for(500_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  const auto status = query(0, 1);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->node, 1);
  EXPECT_GT(status->detours, 0);  // node 1 is detouring too
}

TEST_F(StatusTest, DeadNodeTimesOut) {
  sim.run_for(500_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(4, 0), true);
  injector.apply_now(net::ClusterNetwork::nic_component(4, 1), true);
  sim.run_for(1_s);
  const auto status = query(0, 4, 100_ms);
  EXPECT_FALSE(status.has_value());
}

TEST_F(StatusTest, CallbackFiresExactlyOnceOnTimeoutThenLateReply) {
  // Pathological timing: timeout shorter than any possible round trip.
  sim.run_for(500_ms);
  int callbacks = 0;
  system.daemon(0).query_peer_status(1, util::Duration::nanos(1),
                                     [&](const auto&) { ++callbacks; });
  sim.run_for(100_ms);  // the late reply arrives and must be ignored
  EXPECT_EQ(callbacks, 1);
}

TEST_F(StatusTest, LocalStatusMatchesRemoteView) {
  sim.run_for(500_ms);
  injector.apply_now(net::ClusterNetwork::nic_component(2, 0), true);
  sim.run_for(1_s);
  const auto remote = query(0, 2);
  ASSERT_TRUE(remote.has_value());
  const auto local = system.daemon(2).local_status();
  EXPECT_EQ(remote->links_down, local.links_down);
  EXPECT_EQ(remote->detours, local.detours);
  EXPECT_EQ(remote->leases_held, local.leases_held);
}

TEST_F(StatusTest, StopDropsPendingQueriesSilently) {
  sim.run_for(500_ms);
  int callbacks = 0;
  system.daemon(0).query_peer_status(1, 1_s, [&](const auto&) { ++callbacks; });
  system.daemon(0).stop();
  sim.run_for(2_s);
  EXPECT_EQ(callbacks, 0);
}

}  // namespace
}  // namespace drs::core
