#include <gtest/gtest.h>

#include "cluster/availability.hpp"
#include "cluster/scenario.hpp"
#include "cluster/workload.hpp"
#include "net/failure.hpp"

namespace drs::cluster {
namespace {

using namespace drs::util::literals;

// --- AvailabilityTracker ----------------------------------------------------

util::SimTime at(std::int64_t ms) {
  return util::SimTime::zero() + util::Duration::millis(ms);
}

TEST(AvailabilityTracker, AllUpIsPerfect) {
  AvailabilityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.add_sample(at(i), true);
  EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
  EXPECT_EQ(tracker.nines(), 9.0);
  EXPECT_TRUE(tracker.outages().empty());
  EXPECT_FALSE(tracker.outage_open());
}

TEST(AvailabilityTracker, OutageIntervalBoundaries) {
  AvailabilityTracker tracker;
  tracker.add_sample(at(0), true);
  tracker.add_sample(at(10), false);
  tracker.add_sample(at(20), false);
  tracker.add_sample(at(30), true);
  tracker.add_sample(at(40), false);
  tracker.add_sample(at(50), true);
  ASSERT_EQ(tracker.outages().size(), 2u);
  EXPECT_EQ(tracker.outages()[0].begin, at(10));
  EXPECT_EQ(tracker.outages()[0].end, at(30));
  EXPECT_EQ(tracker.outages()[1].length(), 10_ms);
  EXPECT_EQ(tracker.longest_outage(), 20_ms);
  EXPECT_EQ(tracker.total_outage(), 30_ms);
  EXPECT_DOUBLE_EQ(tracker.availability(), 0.5);
}

TEST(AvailabilityTracker, OpenOutageReported) {
  AvailabilityTracker tracker;
  tracker.add_sample(at(0), true);
  tracker.add_sample(at(10), false);
  EXPECT_TRUE(tracker.outage_open());
  EXPECT_TRUE(tracker.outages().empty());  // not closed yet
}

TEST(AvailabilityTracker, NinesComputation) {
  AvailabilityTracker tracker;
  for (int i = 0; i < 999; ++i) tracker.add_sample(at(i), true);
  tracker.add_sample(at(999), false);
  EXPECT_NEAR(tracker.nines(), 3.0, 0.01);
  EXPECT_NE(tracker.summary().find("availability="), std::string::npos);
}

// --- Workload on a healthy cluster ------------------------------------------

TEST(Workload, HealthyClusterServesEverything) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  WorkloadConfig config;
  RequestReplyWorkload workload(network, config);
  workload.start();
  sim.run_for(2_s);
  workload.stop();
  sim.run_for(200_ms);
  const auto& stats = workload.stats();
  EXPECT_GT(stats.requests_sent, 500u);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 1.0);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_GT(stats.latency_seconds.mean(), 0.0);
  EXPECT_LT(stats.latency_seconds.mean(), 1e-3);
}

TEST(Workload, CompletionHookSeesEveryOutcome) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  RequestReplyWorkload workload(network, {});
  std::uint64_t ok = 0, bad = 0;
  workload.set_completion_hook(
      [&](bool success, net::NodeId, net::NodeId) { (success ? ok : bad) += 1; });
  workload.start();
  sim.run_for(1_s);
  workload.stop();
  sim.run_for(200_ms);
  EXPECT_EQ(ok, workload.stats().replies_received);
  EXPECT_EQ(bad, workload.stats().timeouts);
}

TEST(Workload, DeadServerCausesTimeouts) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 4, .backplane = {}});
  network.set_component_failed(net::ClusterNetwork::nic_component(2, 0), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(2, 1), true);
  RequestReplyWorkload workload(network, {});
  workload.start();
  sim.run_for(1_s);
  workload.stop();
  sim.run_for(200_ms);
  EXPECT_GT(workload.stats().timeouts, 0u);
  EXPECT_LT(workload.stats().success_rate(), 1.0);
}

// --- End-to-end availability study -------------------------------------------

StudyConfig small_study(const std::string& policy) {
  StudyConfig config;
  config.node_count = 6;
  config.policy = policy;
  config.params.drs.probe_interval = 50_ms;
  config.params.drs.probe_timeout = 20_ms;
  config.params.drs.discover_timeout = 25_ms;
  config.params.rip.advertise_interval = 1_s;
  config.params.rip.route_timeout = 6_s;
  config.trace.horizon = 30_s;
  config.trace.failures_per_server = 2.0;
  config.trace.network_share = 1.0;  // only network failures stress routing
  config.trace.mean_repair = 5_s;
  config.trace.backplane_share = 0.1;
  config.trace.seed = 99;
  config.warmup = 2_s;
  return config;
}

TEST(Study, DrsDeliversHigherAvailabilityThanStatic) {
  const StudyResult drs = run_study(small_study("drs"));
  const StudyResult stat = run_study(small_study("static"));
  ASSERT_GT(drs.workload.requests_sent, 0u);
  ASSERT_GT(drs.trace_stats.network_related, 0u);
  EXPECT_GT(drs.workload.success_rate(), stat.workload.success_rate());
  EXPECT_GT(drs.workload.success_rate(), 0.97);
  EXPECT_GT(drs.protocol_messages, 0u);
  EXPECT_EQ(stat.protocol_messages, 0u);
}

TEST(Study, ComparativeRunsEveryRegisteredPolicy) {
  const auto results = run_comparative_study(small_study("drs"));
  const std::vector<std::string> names = policy::policy_names();
  ASSERT_EQ(results.size(), names.size());
  std::size_t drs_index = 0, rip_index = 0, static_index = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].policy, names[i]);
    if (names[i] == "drs") drs_index = i;
    if (names[i] == "rip") rip_index = i;
    if (names[i] == "static") static_index = i;
  }
  // Identical seed => identical traces.
  EXPECT_EQ(results[drs_index].trace_stats.total,
            results[static_index].trace_stats.total);
  // Ordering of merit on the same failures: DRS beats the reactive
  // baseline, and anything beats static.
  EXPECT_GE(results[drs_index].workload.success_rate(),
            results[rip_index].workload.success_rate());
  EXPECT_GE(results[rip_index].workload.success_rate(),
            results[static_index].workload.success_rate() - 1e-9);
  EXPECT_NE(results[drs_index].summary().find("drs"), std::string::npos);
}

}  // namespace
}  // namespace drs::cluster
