// Detector tuning features: adaptive probe timeouts and flap damping.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "net/failure.hpp"

namespace drs::core {
namespace {

using namespace drs::util::literals;

util::Duration detection_latency(DrsSystem& system, sim::Simulator& sim,
                                 net::ClusterNetwork& network,
                                 net::ComponentIndex component) {
  const util::SimTime injected = sim.now();
  network.set_component_failed(component, true);
  sim.run_for(2_s);
  for (const auto& t : system.daemon(0).links().history()) {
    if (t.to == LinkState::kDown && t.at >= injected) return t.at - injected;
  }
  return util::Duration::max();
}

// --- Adaptive probe timeout -----------------------------------------------------

TEST(AdaptiveTimeout, CutsDetectionLatency) {
  auto run = [](bool adaptive) {
    sim::Simulator sim;
    net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
    DrsConfig config;
    config.probe_interval = 100_ms;
    config.probe_timeout = 80_ms;
    config.adaptive_timeout = adaptive;
    config.min_probe_timeout = 2_ms;
    DrsSystem system(network, config);
    system.start();
    sim.run_for(1_s);  // let the RTT estimator converge
    return detection_latency(system, sim, network,
                             net::ClusterNetwork::nic_component(1, 0));
  };
  const util::Duration fixed = run(false);
  const util::Duration adaptive = run(true);
  ASSERT_NE(fixed, util::Duration::max());
  ASSERT_NE(adaptive, util::Duration::max());
  // Fixed: ~2 cycles of waiting for the 80 ms timeout. Adaptive: timeouts
  // collapse to the 2 ms floor, so detection is bounded by probe pacing.
  EXPECT_LT(adaptive + 50_ms, fixed);
}

TEST(AdaptiveTimeout, RespectsFloorUnderJitter) {
  // 1 ms jitter on the medium: the adaptive timeout must not generate a
  // stream of false losses (the floor and the 4*rttvar term absorb it).
  sim::Simulator sim;
  net::Backplane::Config jittery;
  jittery.jitter = 1_ms;
  jittery.seed = 3;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = jittery});
  DrsConfig config;
  config.adaptive_timeout = true;
  config.min_probe_timeout = 5_ms;  // > 2 * max one-way jitter
  DrsSystem system(network, config);
  system.start();
  sim.run_for(5_s);
  for (net::NodeId i = 0; i < 6; ++i) {
    EXPECT_EQ(system.daemon(i).links().down_count(), 0u) << "node " << i;
    EXPECT_EQ(system.daemon(i).metrics().links_declared_down, 0u);
  }
}

TEST(AdaptiveTimeout, FirstProbesUseConfiguredTimeout) {
  // Before any RTT sample exists the fixed timeout applies (no division by
  // zero, no zero-duration timers).
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 3, .backplane = {}});
  DrsConfig config;
  config.adaptive_timeout = true;
  DrsSystem system(network, config);
  system.start();
  sim.run_for(50_ms);
  EXPECT_GT(system.total_probes_sent(), 0u);
  for (net::NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(system.daemon(i).metrics().probes_failed, 0u);
  }
}

// --- Flap damping ----------------------------------------------------------------

TEST(FlapDamping, TableSuppressesAfterRepeatedFlaps) {
  LinkPolicy policy;
  policy.failures_to_down = 1;
  policy.successes_to_up = 1;
  policy.flap_threshold = 2;
  policy.flap_window = 10_s;
  policy.flap_hold = 5_s;
  LinkStateTable table(0, 4, policy);
  auto at = [](std::int64_t ms) {
    return util::SimTime::zero() + util::Duration::millis(ms);
  };
  // Flap 1 and 2: normal down/up cycles.
  table.record_probe(1, 0, false, at(0));
  table.record_probe(1, 0, true, at(100));
  table.record_probe(1, 0, false, at(200));
  table.record_probe(1, 0, true, at(300));
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
  EXPECT_EQ(table.suppressions(), 0u);
  // Flap 3 exceeds the budget: the link is held DOWN.
  table.record_probe(1, 0, false, at(400));
  EXPECT_EQ(table.suppressions(), 1u);
  EXPECT_TRUE(table.suppressed(1, 0, at(500)));
  table.record_probe(1, 0, true, at(500));
  EXPECT_EQ(table.state(1, 0), LinkState::kDown);  // success ignored in hold
  // After the hold expires, recovery works again.
  table.record_probe(1, 0, true, at(5500));
  EXPECT_EQ(table.state(1, 0), LinkState::kUp);
  EXPECT_FALSE(table.suppressed(1, 0, at(5500)));
}

TEST(FlapDamping, OldFlapsAgeOutOfTheWindow) {
  LinkPolicy policy;
  policy.failures_to_down = 1;
  policy.flap_threshold = 2;
  policy.flap_window = 1_s;
  policy.flap_hold = 5_s;
  LinkStateTable table(0, 4, policy);
  auto at = [](std::int64_t ms) {
    return util::SimTime::zero() + util::Duration::millis(ms);
  };
  // Three flaps spread over 3 seconds: never more than 2 within any 1 s
  // window, so no suppression.
  for (int flap = 0; flap < 3; ++flap) {
    table.record_probe(1, 0, false, at(flap * 1500));
    table.record_probe(1, 0, true, at(flap * 1500 + 100));
  }
  EXPECT_EQ(table.suppressions(), 0u);
}

TEST(FlapDamping, DisabledByDefault) {
  LinkStateTable table(0, 4, LinkPolicy{});
  auto at = [](std::int64_t ms) {
    return util::SimTime::zero() + util::Duration::millis(ms);
  };
  for (int flap = 0; flap < 20; ++flap) {
    table.record_probe(1, 0, false, at(flap * 10));
    table.record_probe(1, 0, false, at(flap * 10 + 1));
    table.record_probe(1, 0, true, at(flap * 10 + 2));
  }
  EXPECT_EQ(table.suppressions(), 0u);
  EXPECT_FALSE(table.suppressed(1, 0, at(1000)));
}

TEST(FlapDamping, ReducesRouteChurnOnFlappingNic) {
  auto run = [](std::uint32_t threshold) {
    sim::Simulator sim;
    net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
    DrsConfig config;
    config.probe_interval = 50_ms;
    config.probe_timeout = 20_ms;
    config.failures_to_down = 1;
    config.flap_threshold = threshold;
    config.flap_window = 5_s;
    config.flap_hold = 3_s;
    DrsSystem system(network, config);
    system.start();
    sim.run_for(300_ms);
    // A NIC that flaps every 200 ms for 6 seconds.
    net::FailureInjector injector(network);
    const auto component = net::ClusterNetwork::nic_component(1, 0);
    for (int i = 0; i < 30; ++i) {
      injector.schedule(net::FailureAction{
          sim.now() + util::Duration::millis(200 * i), component, i % 2 == 0});
    }
    sim.run_for(8_s);
    return system.daemon(0).metrics().route_changes.size();
  };
  const std::size_t undamped = run(0);
  const std::size_t damped = run(2);
  EXPECT_GT(undamped, damped * 2) << "undamped=" << undamped
                                  << " damped=" << damped;
}

TEST(FlapDamping, SuppressedLinkStillRecoversEventually) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 5, .backplane = {}});
  DrsConfig config;
  config.probe_interval = 50_ms;
  config.probe_timeout = 20_ms;
  config.failures_to_down = 1;
  config.flap_threshold = 1;
  config.flap_window = 5_s;
  config.flap_hold = 1_s;
  DrsSystem system(network, config);
  system.start();
  sim.run_for(300_ms);
  // Two quick flaps trigger suppression...
  net::FailureInjector injector(network);
  const auto component = net::ClusterNetwork::nic_component(1, 0);
  injector.apply_now(component, true);
  sim.run_for(200_ms);
  injector.apply_now(component, false);
  sim.run_for(200_ms);
  injector.apply_now(component, true);
  sim.run_for(200_ms);
  injector.apply_now(component, false);
  // ... but once the link stays good past the hold, service returns to
  // direct routing.
  sim.run_for(5_s);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kDirect);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

// --- Warm-standby relays --------------------------------------------------------

DrsConfig standby_config(bool warm) {
  DrsConfig c;
  c.probe_interval = 50_ms;
  c.probe_timeout = 20_ms;
  c.failures_to_down = 2;
  c.discover_timeout = 40_ms;
  c.warm_standby = warm;
  return c;
}

/// Time from the second direct link's DOWN verdict to relay mode.
util::Duration relay_switch_latency(bool warm) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, standby_config(warm));
  system.start();
  sim.run_for(500_ms);
  // First leg dies; with warm standby the daemon pre-arms a relay now.
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  sim.run_for(1_s);
  // Second leg dies.
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  util::SimTime down_verdict = util::SimTime::max();
  for (const auto& t : system.daemon(0).links().history()) {
    if (t.peer == 1 && t.network == 0 && t.to == LinkState::kDown) {
      down_verdict = t.at;
    }
  }
  util::SimTime relay_mode = util::SimTime::max();
  for (const auto& change : system.daemon(0).metrics().route_changes) {
    if (change.peer == 1 && change.to == PeerRouteMode::kRelay) {
      relay_mode = std::min(relay_mode, change.at);
    }
  }
  EXPECT_NE(down_verdict, util::SimTime::max());
  EXPECT_NE(relay_mode, util::SimTime::max());
  return relay_mode - down_verdict;
}

TEST(WarmStandby, ActivatesInstantlyOnSecondFailure) {
  const util::Duration cold = relay_switch_latency(false);
  const util::Duration warm = relay_switch_latency(true);
  // Cold path pays the discover round; warm is same-event.
  EXPECT_GE(cold, standby_config(false).discover_timeout);
  EXPECT_EQ(warm, util::Duration::zero());
}

TEST(WarmStandby, CountsActivations) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, standby_config(true));
  system.start();
  sim.run_for(500_ms);
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  sim.run_for(1_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(1_s);
  EXPECT_EQ(system.daemon(0).metrics().standby_activations, 1u);
  EXPECT_EQ(system.daemon(0).peer_mode(1), PeerRouteMode::kRelay);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

TEST(WarmStandby, HealInvalidatesStandby) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, standby_config(true));
  system.start();
  sim.run_for(500_ms);
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  sim.run_for(1_s);  // standby armed
  network.heal_all();
  sim.run_for(1_s);  // back to direct, standby cleared
  // Kill the previous standby relay (node 2) entirely, then cross-split:
  // the daemon must rediscover (node 3) instead of blindly using stale state.
  network.set_component_failed(net::ClusterNetwork::nic_component(2, 0), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(2, 1), true);
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  sim.run_for(1_s);
  network.set_component_failed(net::ClusterNetwork::nic_component(1, 0), true);
  sim.run_for(2_s);
  ASSERT_TRUE(system.daemon(0).relay_for(1).has_value());
  EXPECT_EQ(*system.daemon(0).relay_for(1), 3);
  EXPECT_TRUE(system.test_reachability(0, 1));
}

TEST(WarmStandby, NoStandbyTrafficWhenDisabled) {
  sim::Simulator sim;
  net::ClusterNetwork network(sim, {.node_count = 6, .backplane = {}});
  DrsSystem system(network, standby_config(false));
  system.start();
  sim.run_for(500_ms);
  network.set_component_failed(net::ClusterNetwork::nic_component(0, 1), true);
  sim.run_for(1_s);
  // One leg down, other up: no discovery should have run at all.
  EXPECT_EQ(system.daemon(0).metrics().discoveries_started, 0u);
}

}  // namespace
}  // namespace drs::core
