// Operator's view: a live cluster under random failure churn, inspected
// through the DRS management plane (STATUS_REQUEST queries over the data
// path) and the frame tracer.
//
//   $ ./cluster_inspector [--nodes 8] [--churn-events 10] [--trace]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "drs.hpp"

using namespace drs;
using namespace drs::util::literals;

namespace {

void print_health_report(core::DrsSystem& drs, sim::Simulator& simulator) {
  util::Table table({"node", "reachable", "links down", "detours", "leases",
                     "query rtt"});
  const std::uint16_t n = drs.node_count();
  for (net::NodeId node = 1; node < n; ++node) {
    std::optional<core::DrsDaemon::RemoteStatus> status;
    bool done = false;
    drs.daemon(0).query_peer_status(node, 200_ms, [&](const auto& s) {
      status = s;
      done = true;
    });
    const auto deadline = simulator.now() + 300_ms;
    while (!done && simulator.now() < deadline && !simulator.idle()) {
      simulator.step();
    }
    if (status) {
      table.add_row({std::to_string(node), "yes",
                     std::to_string(status->links_down),
                     std::to_string(status->detours),
                     std::to_string(status->leases_held),
                     util::to_string(status->rtt)});
    } else {
      table.add_row({std::to_string(node), "NO", "-", "-", "-", "-"});
    }
  }
  std::printf("t=%s, health as seen from node 0:\n%s\n",
              util::to_string(simulator.now()).c_str(), table.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(
      argc, argv,
      {{"nodes", "cluster size (default 8)"},
       {"churn-events", "random component flips to inject (default 10)"},
       {"script", "failure-script file (see src/net/script.hpp); replaces churn"},
       {"seed", "churn seed"},
       {"trace", "dump recent control-plane frames at the end"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;
  const auto nodes = static_cast<std::uint16_t>(flags->get_int("nodes", 8));
  const int churn = static_cast<int>(flags->get_int("churn-events", 10));
  util::Rng rng(static_cast<std::uint64_t>(flags->get_int("seed", 5)));

  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = nodes, .backplane = {}});
  net::FrameTracer tracer(network, 64);
  tracer.set_filter([](const net::TraceRecord& record) {
    return record.protocol == net::Protocol::kDrsControl;
  });

  core::DrsSystem drs(network, core::DrsConfig{});
  drs.start();
  drs.settle(1_s);
  std::printf("== healthy baseline ==\n");
  print_health_report(drs, simulator);

  net::FailureInjector injector(network);
  if (flags->has("script")) {
    const std::string path = flags->get_string("script", "");
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open script: %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    const auto script = net::parse_failure_script(text.str(), nodes);
    if (!script.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), script.error.c_str());
      return 1;
    }
    net::schedule_script(injector, script.actions, simulator.now());
    const util::Duration span =
        script.actions.empty() ? 0_s : script.actions.back().at;
    drs.settle(span + 1_s);
    std::printf("== after script '%s' (%zu actions, %zu currently failed) ==\n",
                path.c_str(), script.actions.size(), injector.currently_failed());
  } else {
    for (int i = 0; i < churn; ++i) {
      const auto component = static_cast<net::ComponentIndex>(
          rng.next_below(network.component_count()));
      injector.apply_now(component, !network.component_failed(component));
      drs.settle(util::Duration::millis(rng.next_int(100, 600)));
    }
    drs.settle(1_s);
    std::printf("== after %d random component flips (%zu currently failed) ==\n",
                churn, injector.currently_failed());
  }
  print_health_report(drs, simulator);

  network.heal_all();
  drs.settle(2_s);
  std::printf("== healed ==\n");
  print_health_report(drs, simulator);

  if (flags->get_bool("trace")) {
    std::printf("last control-plane frames:\n%s", tracer.dump().c_str());
  }
  return 0;
}
