// Side-by-side: the same hardware failure under DRS, RIP-lite and static
// routing, measured from the application's point of view.
//
//   $ ./proactive_vs_reactive [--nodes 12] [--scenario nic|backplane|cross]
#include <cstdio>
#include <string>

#include "drs.hpp"

using namespace drs;
using namespace drs::util::literals;

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(
      argc, argv,
      {{"nodes", "cluster size (default 12)"},
       {"scenario", "nic | backplane | cross (default nic)"},
       {"rip-advert-ms", "RIP advertisement interval (default 1000)"},
       {"rip-timeout-ms", "RIP route timeout (default 6000)"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;

  const auto nodes = static_cast<std::uint16_t>(flags->get_int("nodes", 12));
  const std::string scenario = flags->get_string("scenario", "nic");

  std::vector<net::ComponentIndex> failures;
  if (scenario == "nic") {
    failures = {net::ClusterNetwork::nic_component(1, 0)};
  } else if (scenario == "backplane") {
    failures = {static_cast<net::ComponentIndex>(2u * nodes)};
  } else if (scenario == "cross") {
    failures = {net::ClusterNetwork::nic_component(0, 1),
                net::ClusterNetwork::nic_component(1, 0)};
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 1;
  }

  util::Table table({"protocol", "healthy before", "recovered", "app outage",
                     "probes lost", "protocol msgs"});
  for (const char* policy : {"drs", "rip", "static"}) {
    reactive::ScenarioConfig config;
    config.node_count = nodes;
    config.policy = policy;
    config.params.rip.advertise_interval =
        util::Duration::millis(flags->get_int("rip-advert-ms", 1000));
    config.params.rip.route_timeout =
        util::Duration::millis(flags->get_int("rip-timeout-ms", 6000));
    config.warmup = 3_s;
    config.measure = config.params.rip.route_timeout * 3;
    const auto result = reactive::run_failure_scenario(config, failures);
    table.add_row({policy,
                   result.healthy_before ? "yes" : "no",
                   result.recovered ? "yes" : "no",
                   result.recovered ? util::to_string(result.app_outage)
                                    : std::string("-"),
                   std::to_string(result.probes_lost),
                   std::to_string(result.protocol_messages)});
  }
  std::printf("scenario: %s failure, %u nodes\n%s", scenario.c_str(), nodes,
              table.to_text().c_str());
  std::printf(
      "\nDRS repairs in O(probe interval); RIP waits out its route timeout;\n"
      "static routing never recovers. Classic RIP uses 30 s / 180 s timers —\n"
      "pass --rip-advert-ms 30000 --rip-timeout-ms 180000 to see it unscaled.\n");
  return 0;
}
