// Survivability analysis CLI: Equation 1, the 0.99 thresholds, and on-demand
// Monte-Carlo validation — the paper's quantitative story as a tool.
//
//   $ ./survivability_analysis --failures 3 --max-nodes 64 --iterations 10000
#include <cstdio>

#include "drs.hpp"

using namespace drs;

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(
      argc, argv,
      {{"failures", "failure count f (default 3)"},
       {"max-nodes", "largest N in the series (default 64)"},
       {"iterations", "Monte-Carlo iterations per N; 0 = analytic only"},
       {"target", "threshold target probability (default 0.99)"},
       {"seed", "Monte-Carlo seed"},
       {"csv", "emit CSV instead of an aligned table"},
       {"mtbf-hours", "component MTBF in hours (enables the availability report)"},
       {"mttr-hours", "component MTTR in hours (default 4)"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;

  const std::int64_t failures = flags->get_int("failures", 3);
  const std::int64_t max_nodes = flags->get_int("max-nodes", 64);
  const auto iterations =
      static_cast<std::uint64_t>(flags->get_int("iterations", 0));
  const double target = flags->get_double("target", 0.99);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 42));

  std::vector<std::string> headers{"N", "P[Success] (Eq. 1)"};
  if (iterations > 0) {
    headers.push_back("simulated");
    headers.push_back("|diff|");
    headers.push_back("wilson95");
  }
  util::Table table(headers);
  for (std::int64_t n = std::max<std::int64_t>(2, failures / 2); n <= max_nodes;
       ++n) {
    if (failures > analytic::component_count(n)) continue;
    const double exact = analytic::p_success(n, failures);
    std::vector<std::string> row{std::to_string(n),
                                 util::format_double(exact, 6)};
    if (iterations > 0) {
      mc::EstimateOptions options;
      options.iterations = iterations;
      options.seed = seed;
      const auto estimate = mc::estimate_p_success(n, failures, options);
      row.push_back(util::format_double(estimate.p, 6));
      row.push_back(util::format_double(std::abs(estimate.p - exact), 6));
      // Built up with += (not operator+ chaining): GCC 12's -Wrestrict trips
      // a false positive on the inlined `const char* + std::string&&` form.
      std::string interval = "[";
      interval += util::format_double(estimate.wilson95.lo, 4);
      interval += ", ";
      interval += util::format_double(estimate.wilson95.hi, 4);
      interval += "]";
      row.push_back(std::move(interval));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", flags->get_bool("csv") ? table.to_csv().c_str()
                                             : table.to_text().c_str());

  const std::int64_t threshold = analytic::threshold_nodes(failures, target);
  if (threshold > 0) {
    std::printf("P[Success] first reaches %s at N = %lld (f = %lld)\n",
                util::format_double(target, 4).c_str(),
                static_cast<long long>(threshold),
                static_cast<long long>(failures));
  }

  if (flags->has("mtbf-hours")) {
    analytic::ComponentReliability reliability;
    reliability.mtbf_seconds = flags->get_double("mtbf-hours", 720.0) * 3600.0;
    reliability.mttr_seconds = flags->get_double("mttr-hours", 4.0) * 3600.0;
    const std::int64_t n = std::min<std::int64_t>(max_nodes, 64);
    const double availability = analytic::pair_availability(n, reliability);
    std::printf(
        "\ntime-domain availability (N=%lld, MTBF=%.1f h, MTTR=%.1f h, "
        "q=%.6f):\n"
        "  DRS dual-network pair availability:   %.8f\n"
        "  single-network baseline:              %.8f\n"
        "  expected annual pair downtime (DRS):  %s\n",
        static_cast<long long>(n), reliability.mtbf_seconds / 3600.0,
        reliability.mttr_seconds / 3600.0, reliability.steady_state_q(),
        availability, analytic::single_network_pair_availability(reliability),
        util::to_string(analytic::expected_annual_pair_downtime(n, reliability))
            .c_str());
    if (iterations > 0) {
      mc::TimeAvailabilityOptions options;
      options.nodes = n;
      options.reliability = reliability;
      options.horizon_seconds = reliability.mtbf_seconds * 200.0;
      options.sample_period_seconds = reliability.mttr_seconds / 2.0;
      options.seed = seed;
      const auto simulated = mc::simulate_time_availability(options);
      std::printf("  renewal-process simulation:           %.8f "
                  "(%llu samples)\n",
                  simulated.availability,
                  static_cast<unsigned long long>(simulated.samples));
    }
  }
  return 0;
}
