// The deployment the paper describes: MCI WorldCom ran DRS in 27 local
// voice-mail server clusters of 8-12 servers each. This example replays a
// synthetic one-"year" failure trace (13 % network-related, per the paper's
// field data) against every cluster, under DRS and under static routing, and
// reports fleet-wide availability.
//
// Time compression: one simulated minute stands for one month, so a "year"
// of failures plays out in 12 simulated minutes per cluster. Rates are
// expressed per horizon, so only the absolute timescale is compressed.
//
//   $ ./voicemail_cluster [--clusters 27] [--horizon-s 60] [--seed 7]
#include <cstdio>

#include "drs.hpp"

using namespace drs;
using namespace drs::util::literals;

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(
      argc, argv,
      {{"clusters", "number of clusters (default 27, the deployment size)"},
       {"horizon-s", "compressed trace horizon per cluster in seconds (default 30)"},
       {"failures-per-server", "expected failures per server per horizon (default 1.0)"},
       {"seed", "trace seed"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;

  const auto clusters = static_cast<int>(flags->get_int("clusters", 27));
  const auto horizon =
      util::Duration::seconds(flags->get_int("horizon-s", 30));
  const double failures_per_server =
      flags->get_double("failures-per-server", 1.0);
  const auto seed = static_cast<std::uint64_t>(flags->get_int("seed", 7));

  struct FleetStats {
    std::uint64_t requests = 0;
    std::uint64_t replies = 0;
    std::size_t outages = 0;
    util::Duration total_outage = util::Duration::zero();
    std::uint64_t messages = 0;
  };
  FleetStats fleet_drs, fleet_static;
  std::size_t total_network_failures = 0;
  std::size_t total_failures = 0;

  util::Table table({"cluster", "servers", "failures (net)", "drs success",
                     "static success", "drs outage", "static outage"});

  util::Rng sizing(seed);
  for (int c = 0; c < clusters; ++c) {
    cluster::StudyConfig config;
    // Deployment: "each cluster contains between 8 and 12 servers".
    config.node_count = static_cast<std::uint16_t>(8 + sizing.next_below(5));
    config.trace.horizon = horizon;
    config.trace.failures_per_server = failures_per_server;
    config.trace.network_share = 0.13;  // the paper's field statistic
    config.trace.mean_repair = horizon / 10;
    config.trace.seed = util::mix64(seed, static_cast<std::uint64_t>(c));
    config.warmup = 2_s;
    config.params.drs.probe_interval = 100_ms;
    config.params.drs.probe_timeout = 40_ms;

    config.policy = "drs";
    const cluster::StudyResult with_drs = cluster::run_study(config);
    config.policy = "static";
    const cluster::StudyResult without = cluster::run_study(config);

    table.add_row(
        {std::to_string(c), std::to_string(config.node_count),
         std::to_string(with_drs.trace_stats.total) + " (" +
             std::to_string(with_drs.trace_stats.network_related) + ")",
         util::format_double(with_drs.workload.success_rate(), 5),
         util::format_double(without.workload.success_rate(), 5),
         util::to_string(with_drs.availability.total_outage()),
         util::to_string(without.availability.total_outage())});

    fleet_drs.requests += with_drs.workload.requests_sent;
    fleet_drs.replies += with_drs.workload.replies_received;
    fleet_drs.outages += with_drs.availability.outages().size();
    fleet_drs.total_outage += with_drs.availability.total_outage();
    fleet_drs.messages += with_drs.protocol_messages;
    fleet_static.requests += without.workload.requests_sent;
    fleet_static.replies += without.workload.replies_received;
    fleet_static.outages += without.availability.outages().size();
    fleet_static.total_outage += without.availability.total_outage();
    total_network_failures += with_drs.trace_stats.network_related;
    total_failures += with_drs.trace_stats.total;
  }

  std::printf("%s\n", table.to_text().c_str());
  const double share = total_failures == 0
                           ? 0.0
                           : static_cast<double>(total_network_failures) /
                                 static_cast<double>(total_failures);
  std::printf("fleet: %zu hardware failures, %.1f %% network-related (target 13 %%)\n",
              total_failures, share * 100);
  auto rate = [](const FleetStats& s) {
    return s.requests == 0 ? 1.0
                           : static_cast<double>(s.replies) /
                                 static_cast<double>(s.requests);
  };
  std::printf("fleet success rate: DRS %.5f vs static %.5f\n", rate(fleet_drs),
              rate(fleet_static));
  std::printf("fleet outage time:  DRS %s vs static %s (%zu vs %zu outages)\n",
              util::to_string(fleet_drs.total_outage).c_str(),
              util::to_string(fleet_static.total_outage).c_str(),
              fleet_drs.outages, fleet_static.outages);
  std::printf("DRS protocol traffic across the fleet: %llu messages\n",
              static_cast<unsigned long long>(fleet_drs.messages));
  return 0;
}
