// Quickstart: build an 8-server dual-backplane cluster, start the DRS
// daemons, break things, and watch the routes heal.
//
//   $ ./quickstart [--nodes 8] [--verbose]
#include <cstdio>

#include "drs.hpp"

using namespace drs;
using namespace drs::util::literals;

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(argc, argv,
                                  {{"nodes", "cluster size (default 8)"},
                                   {"verbose", "log protocol events"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;
  if (flags->get_bool("verbose")) util::set_log_level(util::LogLevel::kInfo);
  const auto nodes = static_cast<std::uint16_t>(flags->get_int("nodes", 8));

  // 1+2. A simulated cluster (N hosts, two NICs each, two shared backplanes)
  //      with one running DRS daemon per host, in one expression. Default
  //      config: 100 ms monitoring cycles.
  auto cluster = core::DrsSystemBuilder().node_count(nodes).build();
  net::ClusterNetwork& network = cluster.network();
  core::DrsSystem& drs = cluster.system();
  drs.settle(1_s);
  std::printf("cluster up, %u nodes; 0 -> 1 reachable: %s\n", nodes,
              drs.test_reachability(0, 1) ? "yes" : "no");

  // 3. Kill node 1's primary NIC. DRS detects the dead link via its ICMP
  //    probes and pins node 1's traffic to the secondary network.
  net::FailureInjector injector(network);
  injector.apply_now(net::ClusterNetwork::nic_component(1, 0), true);
  drs.settle(1_s);
  std::printf("node1 primary NIC down -> mode(0->1) = %s, reachable: %s\n",
              core::to_string(drs.daemon(0).peer_mode(1)),
              drs.test_reachability(0, 1) ? "yes" : "no");

  // 4. Also kill node 0's *secondary* NIC: now 0 and 1 share no working
  //    network. DRS broadcasts ROUTE_DISCOVER and relays through a third
  //    server.
  injector.apply_now(net::ClusterNetwork::nic_component(0, 1), true);
  drs.settle(2_s);
  const auto relay = drs.daemon(0).relay_for(1);
  std::printf("cross split -> mode(0->1) = %s via node %d, reachable: %s\n",
              core::to_string(drs.daemon(0).peer_mode(1)),
              relay ? static_cast<int>(*relay) : -1,
              drs.test_reachability(0, 1) ? "yes" : "no");

  // 5. Repair the hardware; DRS tears the detours down again.
  network.heal_all();
  drs.settle(2_s);
  std::printf("healed -> mode(0->1) = %s, DRS routes left: %s\n",
              core::to_string(drs.daemon(0).peer_mode(1)),
              drs.daemon(0).host_routes_empty() ? "none" : "some");

  std::printf("totals: %llu probes, %llu control messages, %llu route installs\n",
              static_cast<unsigned long long>(drs.total_probes_sent()),
              static_cast<unsigned long long>(drs.total_control_messages()),
              static_cast<unsigned long long>(drs.total_route_installs()));
  return 0;
}
