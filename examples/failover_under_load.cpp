// The paper's transparency claim, live: a TCP bulk transfer crosses a NIC
// failure, DRS installs the detour inside the retransmission window, and
// the connection completes as if nothing happened.
//
//   $ ./failover_under_load [--mbytes 4] [--probe-ms 100]
#include <cstdio>

#include "drs.hpp"

using namespace drs;
using namespace drs::util::literals;

int main(int argc, char** argv) {
  auto flags = util::Flags::parse(
      argc, argv,
      {{"mbytes", "transfer size in MB (default 4)"},
       {"probe-ms", "DRS probe interval in ms (default 100)"},
       {"no-drs", "run without DRS to see the difference"}});
  if (!flags) return 1;
  if (flags->help_requested()) return 0;

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(flags->get_int("mbytes", 4)) * 1'000'000;
  const bool use_drs = !flags->get_bool("no-drs");

  sim::Simulator simulator;
  net::ClusterNetwork network(simulator, {.node_count = 8, .backplane = {}});

  core::DrsConfig drs_config;
  drs_config.probe_interval =
      util::Duration::millis(flags->get_int("probe-ms", 100));
  drs_config.probe_timeout = std::min(drs_config.probe_interval / 2, 100_ms);
  core::DrsSystem drs(network, drs_config);
  if (use_drs) drs.start();

  proto::TcpService sender(network.host(0));
  proto::TcpService receiver(network.host(1));
  proto::TcpConnectionPtr server;
  receiver.listen(80, [&](proto::TcpConnectionPtr c) { server = c; });
  auto client = sender.connect(net::cluster_ip(0, 1), 80);
  simulator.run_for(1_s);

  std::printf("starting %llu-byte transfer 0 -> 1 (%s)\n",
              static_cast<unsigned long long>(bytes),
              use_drs ? "DRS on" : "DRS OFF");
  client->offer(bytes);
  client->close();

  // Fail the receiver's primary NIC 50 ms into the transfer.
  simulator.schedule_after(50_ms, [&] {
    network.host(1).nic(0).set_failed(true);
    std::printf("t=%s: node1 primary NIC failed\n",
                util::to_string(simulator.now()).c_str());
  });

  simulator.run_for(120_s);

  std::printf("result: connection %s\n",
              client->state() == proto::TcpConnection::State::kClosed
                  ? "closed cleanly"
                  : client->state() == proto::TcpConnection::State::kReset
                        ? "RESET (transfer failed)"
                        : "still open");
  if (server) {
    std::printf("  delivered: %llu / %llu bytes\n",
                static_cast<unsigned long long>(server->stats().bytes_delivered),
                static_cast<unsigned long long>(bytes));
    std::printf("  longest application stall: %s\n",
                util::to_string(server->stats().max_delivery_gap).c_str());
  }
  std::printf("  sender retransmissions: %llu, RTO firings: %llu\n",
              static_cast<unsigned long long>(client->stats().retransmissions),
              static_cast<unsigned long long>(client->stats().rto_firings));
  if (use_drs) {
    std::printf("  DRS mode for peer 1 at node 0: %s\n",
                core::to_string(drs.daemon(0).peer_mode(1)));
  }
  return 0;
}
